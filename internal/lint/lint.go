// Package lint registers the repository's determinism and reproducibility
// analyzers — the mechanical enforcement of the methodology's "make every
// implicit decision explicit" demand. cmd/hglint runs them; see each
// subpackage for what its analyzer enforces and DESIGN.md ("Static
// enforcement of reproducibility") for the policy rationale.
package lint

import (
	"hgpart/internal/lint/analysis"
	"hgpart/internal/lint/ctxflow"
	"hgpart/internal/lint/detrand"
	"hgpart/internal/lint/gorolifecycle"
	"hgpart/internal/lint/hotalloc"
	"hgpart/internal/lint/mapiter"
	"hgpart/internal/lint/panicdiscipline"
	"hgpart/internal/lint/seedflow"
	"hgpart/internal/lint/sharedguard"
)

// Analyzers returns every analyzer of the suite, in reporting order: the
// determinism checks from PR 2, then the concurrency-safety and hot-path
// allocation checks from PR 7 (DESIGN.md §13).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		mapiter.Analyzer,
		seedflow.Analyzer,
		panicdiscipline.Analyzer,
		ctxflow.Analyzer,
		sharedguard.Analyzer,
		gorolifecycle.Analyzer,
		hotalloc.Analyzer,
	}
}
