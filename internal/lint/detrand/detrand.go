// Package detrand bans nondeterministic randomness and wall-clock reads
// from the repository's algorithm packages.
//
// The paper's methodology requires every randomized implementation decision
// to be replayable from a single seed. The library funnels all randomness
// through internal/rng (a pinned xoshiro256** stream); an algorithm package
// that imports math/rand (whose global stream is shared and whose sequence
// is not stable across Go releases) or crypto/rand (true entropy), or that
// derives behavior from time.Now, silently breaks that contract. Wall-clock
// reads that only *measure* (never steer) a computation are legitimate in
// timing/budget code and are annotated:
//
//	t0 := time.Now() //hglint:ignore detrand wall-clock only measures elapsed time
package detrand

import (
	"go/ast"
	"go/types"
	"strconv"

	"hgpart/internal/lint/analysis"
)

// AlgorithmPackages are the module-relative package roots in which results
// must be a pure function of (input, seed). Subpackages are included.
var AlgorithmPackages = []string{
	"internal/core",
	"internal/gain",
	"internal/kway",
	"internal/kwayfm",
	"internal/multilevel",
	"internal/partition",
	"internal/spectral",
	"internal/exact",
	"internal/gen",
	"internal/eval",
	"internal/portfolio",
}

// bannedImports maps forbidden import paths to the reason they break
// reproducibility.
var bannedImports = map[string]string{
	"math/rand":    "its global stream is shared and not stable across Go releases; draw from internal/rng",
	"math/rand/v2": "its stream is not the pinned experiment stream; draw from internal/rng",
	"crypto/rand":  "true entropy is unreplayable; draw from internal/rng",
}

// wallClockFuncs are time-package functions that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand, crypto/rand and wall-clock reads in algorithm packages; all randomness must flow through internal/rng",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatchesAny(pass.Pkg.Path(), AlgorithmPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				pass.Reportf(imp.Pos(), "algorithm package imports %s: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"algorithm package reads the wall clock (time.%s); results must be a pure function of (input, seed) — keep wall-clock use in timing code and annotate it with //hglint:ignore detrand <reason>",
				fn.Name())
			return true
		})
	}
	return nil
}
