// Fixture: NOT an algorithm package — detrand must stay silent here even
// though both banned imports and wall-clock reads appear.
package report

import (
	"math/rand"
	"time"
)

func Jitter() time.Duration {
	return time.Duration(rand.Intn(10)) * time.Millisecond
}

func Stamp() time.Time { return time.Now() }
