// Fixture: an algorithm package (path suffix internal/kway) exercising
// every detrand rule.
package kway

import (
	crand "crypto/rand" // want "algorithm package imports crypto/rand"
	mrand "math/rand"   // want "algorithm package imports math/rand"
	"time"
)

func shuffle(n int) int {
	return mrand.Intn(n)
}

func entropy() []byte {
	b := make([]byte, 8)
	crand.Read(b)
	return b
}

func stamp() int64 {
	return time.Now().UnixNano() // want "reads the wall clock"
}

func elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want "reads the wall clock"
}

func annotatedTrailing(t0 time.Time) float64 {
	return time.Since(t0).Seconds() //hglint:ignore detrand wall-clock only measures elapsed time
}

func annotatedStandalone(t0 time.Time) float64 {
	//hglint:ignore detrand wall-clock only measures elapsed time
	return time.Since(t0).Seconds()
}
