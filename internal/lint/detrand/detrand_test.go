package detrand_test

import (
	"testing"

	"hgpart/internal/lint/detrand"
	"hgpart/internal/lint/linttest"
)

func TestDetrand(t *testing.T) {
	linttest.Run(t, "testdata", detrand.Analyzer,
		"hgpart/internal/kway",
		"hgpart/internal/report",
	)
}
