// Package other is outside hotalloc's target packages; the annotation is
// inert here and even a flagrant allocation may not produce a finding.
//
//hglint:hotpath
package other

func Alloc(n int) []int {
	return append(make([]int, 0), n)
}
