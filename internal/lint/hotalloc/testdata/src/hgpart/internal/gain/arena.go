// Package gain is a hotalloc fixture shaped like the real arena-backed gain
// container: preallocating constructors stay cold, bucket-list maintenance
// is hot, and one hot function carries a seeded allocation regression of
// exactly the kind the analyzer must catch at lint time.
package gain

import "fmt"

type container struct {
	head []int32
	next []int32
	prev []int32
	vals []int64
}

// newContainer is cold by design: constructors allocate, passes reuse.
func newContainer(n int) *container {
	return &container{
		head: make([]int32, n),
		next: make([]int32, n),
		prev: make([]int32, n),
		vals: make([]int64, n),
	}
}

// link is the steady-state zero-alloc hot path: array surgery only.
//
//hglint:hotpath
func (c *container) link(v, b int32) {
	c.next[v] = c.head[b]
	if c.head[b] >= 0 {
		c.prev[c.head[b]] = v
	}
	c.head[b] = v
	c.prev[v] = -1
}

// update moves a vertex between buckets without allocating. Its guard
// panics with a constant message: constants box into static data, so the
// hot-path boxing check stays quiet about them.
//
//hglint:hotpath
func (c *container) update(v, from, to int32) {
	if v < 0 {
		panic("gain: negative vertex")
	}
	if c.head[from] == v {
		c.head[from] = c.next[v]
	}
	c.link(v, to)
}

// insertRegressed is the seeded regression: an append snuck into a hot
// function, growing the bucket list mid-pass.
//
//hglint:hotpath
func (c *container) insertRegressed(v int32, g int64) {
	c.vals = append(c.vals, g) // want "calls append"
	c.link(v, int32(g))
}

// debugDump shows the annotated-cold-branch escape hatch inside hot code.
//
//hglint:hotpath
func (c *container) debugDump(v int32) {
	if c.prev[v] == c.next[v] {
		//hglint:ignore hotalloc cold invariant-violation branch, never taken in a legal pass
		panic(fmt.Sprintf("gain: corrupt bucket links at %d", v))
	}
}

// hotMistakes collects the other banned constructs.
//
//hglint:hotpath
func (c *container) hotMistakes(n int, s string, sink func(any)) string {
	m := map[int]int{}            // want "map literal"
	sl := []int{1, 2}             // want "slice literal"
	p := &container{}             // want "heap-allocates a composite literal"
	buf := make([]byte, n)        // want "calls make"
	q := new(container)           // want "calls new"
	f := func() int { return n }  // want "builds a closure"
	msg := s + "!"                // want "concatenates strings"
	bs := []byte(s)               // want "converts between string and byte/rune slice"
	fmt.Println(n)                // want "calls fmt.Println"
	sink(container{})             // want "boxes a .*container into an interface argument"
	_, _, _, _, _ = m, sl, p, buf, q
	_ = f
	_ = bs
	return msg
}

// cold has no annotation: the same constructs are fine here.
func (c *container) cold(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
