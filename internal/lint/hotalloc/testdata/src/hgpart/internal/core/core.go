// Package core is the package-level-directive fixture: the package clause
// doc marks the whole package hot, so every function is checked without a
// per-function annotation.
//
//hglint:hotpath
package core

func shift(x []int32, d int32) {
	for i := range x {
		x[i] += d
	}
}

func grow(n int) []int32 {
	return make([]int32, n) // want "calls make"
}
