package hotalloc_test

import (
	"testing"

	"hgpart/internal/lint/hotalloc"
	"hgpart/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata", hotalloc.Analyzer,
		"hgpart/internal/gain",
		"hgpart/internal/core",
		"other",
	)
}
