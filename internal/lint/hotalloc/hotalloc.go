// Package hotalloc makes PR 3's zero-allocation discipline a static
// contract. A function annotated
//
//	//hglint:hotpath
//
// in its doc comment — or every function of a package whose package-clause
// doc carries the directive — may not contain allocation-introducing
// constructs:
//
//   - make, new, append (append may grow its backing array; the arena
//     containers preallocate in Reinit, never mid-pass)
//   - map and slice literals, and &T{...} heap literals
//   - function literals (closures capture and escape)
//   - fmt package calls and string concatenation
//   - string<->[]byte/[]rune conversions
//   - implicit concrete-value-to-interface conversions at call arguments
//     (boxing; pointer-shaped values are exempt — storing a pointer in an
//     interface does not allocate — and so are constants, which the
//     compiler boxes into static data, so panic("message") stays legal)
//
// The hgbench gate catches an allocation regression only when the perf
// suite runs; hotalloc catches it at make lint time, in the PR that
// introduces it. The check is intentionally syntactic and conservative: a
// construct the compiler might optimize away still fails, because hot-path
// code that *looks* allocation-free is the discipline the gain-container
// arena work (DESIGN.md §9) established. Cold diagnostic branches inside a
// hot function (panic formatting, invariant dumps) carry
// //hglint:ignore hotalloc <reason> annotations.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hgpart/internal/lint/analysis"
)

// TargetPackages are the module-relative package roots where hotpath
// annotations are enforced: the FM inner-loop layers from PR 3.
var TargetPackages = []string{
	"internal/core",
	"internal/gain",
	"internal/kwayfm",
}

const hotpathDirective = "//hglint:hotpath"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "functions annotated //hglint:hotpath must not contain allocation-introducing constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatchesAny(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	pkgHot := false
	for _, f := range pass.Files {
		if hasDirective(f.Doc) {
			pkgHot = true
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pkgHot || hasDirective(fd.Doc) {
				checkHot(pass, fd)
			}
		}
	}
	return nil
}

func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, hotpathDirective) {
			return true
		}
	}
	return false
}

func checkHot(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Composite literals already reported as part of an enclosing &T{...}.
	covered := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is a hot path (//hglint:hotpath) but builds a closure, which allocates; hoist it or pass state explicitly", name)
			return false

		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := unparen(n.X).(*ast.CompositeLit); ok {
					covered[cl] = true
					pass.Reportf(n.Pos(), "%s is a hot path (//hglint:hotpath) but heap-allocates a composite literal; reuse a preallocated value", name)
				}
			}

		case *ast.CompositeLit:
			if covered[n] {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "%s is a hot path (//hglint:hotpath) but builds a map literal, which allocates; preallocate it outside the pass", name)
				case *types.Slice:
					pass.Reportf(n.Pos(), "%s is a hot path (//hglint:hotpath) but builds a slice literal, which allocates; reuse an arena-backed slice", name)
				}
			}

		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n]; ok && isString(tv.Type) {
					pass.Reportf(n.Pos(), "%s is a hot path (//hglint:hotpath) but concatenates strings, which allocates", name)
				}
			}

		case *ast.CallExpr:
			checkHotCall(pass, name, n)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	// Builtins and conversions first.
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			pass.Reportf(call.Pos(), "%s is a hot path (//hglint:hotpath) but calls make, which allocates; preallocate in Reinit and reuse", name)
			return
		case "new":
			pass.Reportf(call.Pos(), "%s is a hot path (//hglint:hotpath) but calls new, which allocates", name)
			return
		case "append":
			pass.Reportf(call.Pos(), "%s is a hot path (//hglint:hotpath) but calls append, which may grow the backing array; size the arena up front", name)
			return
		}
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok {
			if pkg, ok := pass.TypesInfo.Uses[base].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "%s is a hot path (//hglint:hotpath) but calls fmt.%s, which allocates for formatting", name, fun.Sel.Name)
				return
			}
		}
	}

	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		// A conversion: string<->[]byte/[]rune copies.
		if len(call.Args) == 1 {
			dst := tv.Type
			if src, ok := pass.TypesInfo.Types[call.Args[0]]; ok && src.Type != nil {
				if stringBytesConv(dst, src.Type) {
					pass.Reportf(call.Pos(), "%s is a hot path (//hglint:hotpath) but converts between string and byte/rune slice, which copies", name)
				}
			}
		}
		return
	}

	// Implicit interface conversions at call arguments box concrete values.
	sig, ok := typeOf(pass, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // the slice is passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || at.IsNil() || types.IsInterface(at.Type) {
			continue
		}
		if at.Value != nil {
			// A constant (panic("message"), logf("literal")): the compiler
			// builds the interface from static data, no runtime allocation.
			continue
		}
		if pointerShaped(at.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "%s is a hot path (//hglint:hotpath) but boxes a %s into an interface argument, which allocates", name, at.Type.String())
	}
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringBytesConv reports a string <-> []byte/[]rune conversion either way.
func stringBytesConv(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports types whose interface representation stores the
// value directly in the data word, so boxing does not allocate.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
