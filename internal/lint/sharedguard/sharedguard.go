// Package sharedguard checks annotated lock discipline: a struct field
// carrying the directive
//
//	//hglint:guardedby <mutex>
//
// (as the field's doc or trailing comment, naming a sibling sync.Mutex or
// sync.RWMutex field) may only be read or written while that mutex is
// provably held. The ROADMAP's deterministic-parallel-FM work and the
// hgserved cluster layer both stand on shared-state discipline that the race
// detector can only catch when a test happens to interleave badly;
// sharedguard makes the discipline a compile-time contract instead.
//
// The analysis is a conservative, flow-sensitive walk of each function body:
//
//   - mu.Lock()/mu.RLock() set the mutex held; mu.Unlock()/mu.RUnlock()
//     clear it; defer mu.Unlock() keeps it held for the function remainder.
//     (RLock counts as held: the analyzer checks discipline, not
//     read/write asymmetry.)
//   - Branches (if/switch/select) are analyzed independently and merged
//     conservatively: a mutex survives the merge only when held on every
//     non-terminating path, so "if x { mu.Unlock(); return }" keeps the
//     straight-line path locked.
//   - Loop bodies are analyzed twice (the second pass with the first pass's
//     exit state) so cross-iteration hazards — publish a pointer to a
//     goroutine in iteration one, touch its guarded fields unlocked in
//     iteration two — are caught.
//   - A local freshly built from a composite literal (c := &Coordinator{...})
//     is exempt until it escapes (passed as an argument, captured by a go or
//     defer statement, sent on a channel, or assigned away): constructors may
//     initialize guarded fields lock-free only while the value is provably
//     private.
//   - A method whose name ends in "Locked" is analyzed with every mutex of
//     its receiver held at entry — the repo's caller-holds-the-lock naming
//     convention. Other helpers that run under a caller's lock can say so
//     explicitly with a //hglint:holds <expr>.<mutex> directive in their doc
//     comment.
//   - A go/defer func literal body starts with no locks held: the goroutine
//     acquires its own locks or gets flagged.
//
// Mutex identity is tracked by spelled access path ("m.mu", "cj.mu"), which
// is exactly as strong as the annotation grammar: aliasing a mutex through a
// differently named local defeats the analyzer and also defeats the human
// reader, so don't.
//
// When a function trips the check and contains no lock operations at all on
// the missing mutex, the finding carries a suggested fix wrapping the body
// in Lock/defer-Unlock — the mechanical repair for a forgotten getter guard.
package sharedguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hgpart/internal/lint/analysis"
)

// TargetPackages are the module-relative package roots whose annotations are
// enforced: the concurrent serving/cluster layer and the checkpointing
// harness, per DESIGN.md §13.
var TargetPackages = []string{
	"internal/chaos",
	"internal/eval",
	"internal/portfolio",
	"internal/service",
}

const (
	guardedbyPrefix = "//hglint:guardedby"
	holdsPrefix     = "//hglint:holds"
)

// Analyzer is the sharedguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "sharedguard",
	Doc:  "fields annotated //hglint:guardedby <mutex> must only be accessed with that mutex held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatchesAny(pass.Pkg.Path(), TargetPackages) {
		return nil
	}
	c := &checker{
		pass:     pass,
		guarded:  map[*types.Var]string{},
		reported: map[string]bool{},
	}
	c.collectGuarded()
	if len(c.guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	guarded map[*types.Var]string // annotated field object -> sibling mutex field name
	// reported dedups diagnostics across the loop-body double pass.
	reported map[string]bool

	// Per-function state:
	recvName string
	lockOps  map[string]bool // mutex keys this function locks or unlocks anywhere
	diags    []analysis.Diagnostic
	diagKeys []string // mutex key per diag, for the suggested-fix pass
}

// state is the lock/fresh state at one program point.
type state struct {
	held       map[string]bool
	fresh      map[types.Object]bool
	terminated bool
}

func newState() *state {
	return &state{held: map[string]bool{}, fresh: map[types.Object]bool{}}
}

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.fresh {
		c.fresh[k] = v
	}
	c.terminated = s.terminated
	return c
}

// merge combines branch exit states conservatively: a mutex is held (and a
// local fresh) after the merge only when it is on every branch that can fall
// through. All branches terminating terminates the merge.
func merge(branches ...*state) *state {
	var live []*state
	for _, b := range branches {
		if b != nil && !b.terminated {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		out := newState()
		out.terminated = true
		return out
	}
	out := live[0].clone()
	for _, b := range live[1:] {
		for k := range out.held {
			if !b.held[k] {
				delete(out.held, k)
			}
		}
		for k := range out.fresh {
			if !b.fresh[k] {
				delete(out.fresh, k)
			}
		}
	}
	return out
}

// collectGuarded parses every //hglint:guardedby annotation in the package,
// validating that the named mutex is a sibling field of mutex type.
func (c *checker) collectGuarded() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				muName, pos, found := guardedbyOf(field)
				if !found {
					continue
				}
				if muName == "" {
					c.pass.Reportf(pos, "guardedby directive needs a mutex name: //hglint:guardedby <mutex>")
					continue
				}
				if !siblingMutex(c.pass, st, muName) {
					c.pass.Reportf(pos, "guardedby names %q, which is not a sibling sync.Mutex or sync.RWMutex field", muName)
					continue
				}
				for _, name := range field.Names {
					if obj, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.guarded[obj] = muName
					}
				}
			}
			return true
		})
	}
}

// guardedbyOf extracts a guardedby directive from the field's doc or trailing
// comment. found distinguishes "no directive" from "directive without name".
func guardedbyOf(field *ast.Field) (muName string, pos token.Pos, found bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, cm := range cg.List {
			if !strings.HasPrefix(cm.Text, guardedbyPrefix) {
				continue
			}
			rest := strings.TrimPrefix(cm.Text, guardedbyPrefix)
			// A further // starts an unrelated trailing comment.
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return "", cm.Pos(), true
			}
			return fields[0], cm.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// siblingMutex reports whether the struct has a field muName of mutex type.
func siblingMutex(pass *analysis.Pass, st *ast.StructType, muName string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != muName {
				continue
			}
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isMutexType(obj.Type()) {
				return true
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkFunc analyzes one function declaration.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.recvName = ""
	c.lockOps = map[string]bool{}
	c.diags = nil
	c.diagKeys = nil

	st := newState()
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		c.recvName = fd.Recv.List[0].Names[0].Name
		// The *Locked naming convention: the caller holds the receiver's
		// mutexes for the duration of the call.
		if strings.HasSuffix(fd.Name.Name, "Locked") {
			for _, mu := range receiverMutexes(c.pass, fd.Recv.List[0]) {
				st.held[c.recvName+"."+mu] = true
			}
		}
	}
	if fd.Doc != nil {
		for _, cm := range fd.Doc.List {
			if rest, ok := strings.CutPrefix(cm.Text, holdsPrefix); ok {
				for _, key := range strings.Fields(rest) {
					st.held[key] = true
				}
			}
		}
	}

	c.block(fd.Body, st)

	// Suggested fix: a function that trips the check and performs no lock
	// operation at all on the missing receiver mutex gets the mechanical
	// getter repair — wrap the body in Lock/defer Unlock.
	fixed := map[string]bool{}
	for i := range c.diags {
		key := c.diagKeys[i]
		if key == "" || c.lockOps[key] || fixed[key] || len(fd.Body.List) == 0 {
			continue
		}
		if c.recvName == "" || !strings.HasPrefix(key, c.recvName+".") {
			continue
		}
		fixed[key] = true
		insert := fd.Body.List[0].Pos()
		c.diags[i].SuggestedFixes = []analysis.SuggestedFix{{
			Message: fmt.Sprintf("hold %s for the whole body", key),
			TextEdits: []analysis.TextEdit{{
				Pos:     insert,
				End:     insert,
				NewText: []byte(key + ".Lock()\n\tdefer " + key + ".Unlock()\n\t"),
			}},
		}}
	}
	for _, d := range c.diags {
		c.pass.Report(d)
	}
}

// receiverMutexes lists the mutex-typed field names of the receiver's struct.
func receiverMutexes(pass *analysis.Pass, recv *ast.Field) []string {
	t := pass.TypesInfo.Types[recv.Type].Type
	if t == nil {
		if obj := pass.TypesInfo.Defs[recv.Names[0]]; obj != nil {
			t = obj.Type()
		}
	}
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	stru, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var mus []string
	for i := 0; i < stru.NumFields(); i++ {
		f := stru.Field(i)
		if isMutexType(f.Type()) {
			mus = append(mus, f.Name())
		}
	}
	return mus
}

// block analyzes a statement list in sequence.
func (c *checker) block(b *ast.BlockStmt, st *state) {
	for _, s := range b.List {
		if st.terminated {
			return
		}
		c.stmt(s, st)
	}
}

func (c *checker) stmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, op := lockOpOf(call, c.pass); op != opNone {
				c.lockOps[key] = true
				if op == opLock {
					st.held[key] = true
				} else {
					delete(st.held, key)
				}
				return
			}
			if isPanicCall(call) {
				c.checkExpr(s.X, st)
				st.terminated = true
				return
			}
		}
		c.checkExpr(s.X, st)

	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.checkExpr(r, st)
		}
		if s.Tok == token.DEFINE && len(s.Lhs) == 1 && len(s.Rhs) == 1 && isFreshExpr(s.Rhs[0]) {
			if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
					st.fresh[obj] = true
					return
				}
			}
		}
		// Any standalone appearance of a fresh local on the right publishes
		// it (aliasing, storing into a shared structure); using it as the
		// base of a selection (c.s = append(c.s, v)) does not.
		for _, r := range s.Rhs {
			c.escapeBareRefs(r, st)
		}
		for _, l := range s.Lhs {
			if s.Tok == token.DEFINE {
				if _, ok := l.(*ast.Ident); ok {
					continue
				}
			}
			c.checkExpr(l, st)
		}

	case *ast.IncDecStmt:
		c.checkExpr(s.X, st)

	case *ast.SendStmt:
		c.checkExpr(s.Chan, st)
		c.checkExpr(s.Value, st)
		c.escapeRefs(s.Value, st)

	case *ast.GoStmt:
		// Arguments are evaluated now, under the current lock state; the
		// spawned body runs later with nothing held. Anything the goroutine
		// can reach has escaped.
		c.escapeRefs(s.Call, st)
		c.checkExpr(s.Call, st)

	case *ast.DeferStmt:
		if key, op := lockOpOf(s.Call, c.pass); op != opNone {
			c.lockOps[key] = true
			// defer mu.Unlock() keeps the mutex held for the remainder of
			// the function; defer mu.Lock() is nonsense we leave to vet.
			return
		}
		c.escapeRefs(s.Call, st)
		c.checkExpr(s.Call, st)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkExpr(r, st)
		}
		st.terminated = true

	case *ast.BranchStmt:
		// break/continue/goto leave the current path; the surrounding
		// construct's merge drops this branch's state.
		st.terminated = true

	case *ast.BlockStmt:
		c.block(s, st)

	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.checkExpr(s.Cond, st)
		thenSt := st.clone()
		c.block(s.Body, thenSt)
		elseSt := st.clone()
		if s.Else != nil {
			c.stmt(s.Else, elseSt)
		}
		*st = *merge(thenSt, elseSt)

	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, st)
		}
		c.loopBody(s.Body, s.Post, st)

	case *ast.RangeStmt:
		c.checkExpr(s.X, st)
		c.loopBody(s.Body, nil, st)

	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, st)
		}
		branches := []*state{st.clone()} // no case taken
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			b := st.clone()
			for _, e := range cc.List {
				c.checkExpr(e, b)
			}
			for _, bs := range cc.Body {
				if b.terminated {
					break
				}
				c.stmt(bs, b)
			}
			branches = append(branches, b)
		}
		*st = *merge(branches...)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.stmt(s.Assign, st)
		branches := []*state{st.clone()}
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			b := st.clone()
			for _, bs := range cc.Body {
				if b.terminated {
					break
				}
				c.stmt(bs, b)
			}
			branches = append(branches, b)
		}
		*st = *merge(branches...)

	case *ast.SelectStmt:
		var branches []*state
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			b := st.clone()
			if cc.Comm != nil {
				c.stmt(cc.Comm, b)
			}
			for _, bs := range cc.Body {
				if b.terminated {
					break
				}
				c.stmt(bs, b)
			}
			branches = append(branches, b)
		}
		if len(branches) == 0 {
			st.terminated = true // select{} blocks forever
			return
		}
		*st = *merge(branches...)

	case *ast.LabeledStmt:
		c.stmt(s.Stmt, st)

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				c.checkExpr(v, st)
			}
			if len(vs.Names) == 1 && len(vs.Values) == 1 && isFreshExpr(vs.Values[0]) {
				if obj := c.pass.TypesInfo.Defs[vs.Names[0]]; obj != nil {
					st.fresh[obj] = true
				}
			}
		}
	}
}

// loopBody analyzes a loop body twice — the second pass seeded with the first
// pass's exit state — so hazards that only appear across iterations (escape
// in iteration one, unlocked access in iteration two) are found. Diagnostics
// are deduplicated by position, so the double pass never double-reports.
func (c *checker) loopBody(body *ast.BlockStmt, post ast.Stmt, st *state) {
	first := st.clone()
	c.block(body, first)
	if post != nil && !first.terminated {
		c.stmt(post, first)
	}
	if !first.terminated {
		second := first.clone()
		c.block(body, second)
		if post != nil && !second.terminated {
			c.stmt(post, second)
		}
	}
	// The loop may run zero times; conservatively merge the pre-state with
	// the first iteration's exit state.
	*st = *merge(st, first)
}

// checkExpr walks an expression, checking every guarded-field access against
// the current lock state. Function literals are analyzed as separate scopes
// with nothing held (they run later), and a call argument that is a bare
// fresh local publishes it.
func (c *checker) checkExpr(e ast.Expr, st *state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.escapeRefs(n.Body, st)
			inner := newState()
			c.block(n.Body, inner)
			return false
		case *ast.CallExpr:
			for _, a := range n.Args {
				arg := unparen(a)
				if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
					arg = unparen(ue.X)
				}
				if id, ok := arg.(*ast.Ident); ok {
					if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
						delete(st.fresh, obj)
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			c.checkSelector(n, st)
			return true
		}
		return true
	})
}

func (c *checker) checkSelector(sel *ast.SelectorExpr, st *state) {
	selection := c.pass.TypesInfo.Selections[sel]
	if selection == nil {
		return
	}
	fobj, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, guarded := c.guarded[fobj]
	if !guarded {
		return
	}
	base := unparen(sel.X)
	if id, ok := base.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil && st.fresh[obj] {
			return
		}
	}
	key := exprString(base) + "." + mu
	if st.held[key] {
		return
	}
	c.reportGuarded(sel, fobj.Name(), key)
}

func (c *checker) reportGuarded(sel *ast.SelectorExpr, field, key string) {
	msg := fmt.Sprintf("%s.%s is guarded by %s (//hglint:guardedby) but accessed without it held; lock %s or move the access into a *Locked or //hglint:holds helper",
		exprString(unparen(sel.X)), field, key, key)
	dedup := fmt.Sprintf("%d:%s", sel.Pos(), msg)
	if c.reported[dedup] {
		return
	}
	c.reported[dedup] = true
	c.diags = append(c.diags, analysis.Diagnostic{Pos: sel.Pos(), Message: msg})
	c.diagKeys = append(c.diagKeys, key)
}

// escapeBareRefs publishes fresh locals that appear as standalone values in
// e. An ident used only as the base of a selection or index (c.s, c.m[k])
// does not publish c, so constructors can keep initializing fields; a
// closure capture publishes everything it mentions.
func (c *checker) escapeBareRefs(e ast.Expr, st *state) {
	if e == nil || len(st.fresh) == 0 {
		return
	}
	protected := map[*ast.Ident]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				protected[id] = true
			}
		case *ast.IndexExpr:
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				protected[id] = true
			}
		case *ast.FuncLit:
			c.escapeRefs(n, st)
			return false
		}
		return true
	})
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && !protected[id] {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
				delete(st.fresh, obj)
			}
		}
		return true
	})
}

// escapeRefs drops every fresh local referenced anywhere under n: once a
// value is visible to a goroutine, a deferred call, or another structure,
// its guarded fields need the lock like everyone else's.
func (c *checker) escapeRefs(n ast.Node, st *state) {
	if n == nil || len(st.fresh) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
				delete(st.fresh, obj)
			}
		}
		return true
	})
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
)

// lockOpOf classifies a call as a Lock/RLock or Unlock/RUnlock on a
// mutex-typed receiver, returning the receiver's spelled key.
func lockOpOf(call *ast.CallExpr, pass *analysis.Pass) (string, lockOp) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone
	}
	if tv, ok := pass.TypesInfo.Types[sel.X]; !ok || !isMutexType(tv.Type) {
		return "", opNone
	}
	return exprString(unparen(sel.X)), op
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// isFreshExpr reports whether e builds a brand-new value: a composite
// literal, its address, or new(T).
func isFreshExpr(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// exprString renders the spelled access path of an expression, the key
// mutexes and guarded bases are tracked by.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.UnaryExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.BasicLit:
		return e.Value
	default:
		return "?"
	}
}
