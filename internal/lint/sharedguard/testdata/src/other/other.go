// Package other is outside sharedguard's target packages; annotations here
// are not enforced, so nothing in this file may produce a finding.
package other

import "sync"

type loose struct {
	mu sync.Mutex
	n  int //hglint:guardedby mu
}

func (l *loose) Unchecked() int { return l.n }
