// Package service is a sharedguard fixture modeled on the real job-manager
// shapes: mutex-guarded lifecycle state, *Locked helpers, constructors that
// publish to goroutines, and early-unlock branches.
package service

import "sync"

type counter struct {
	mu sync.Mutex
	n  int   //hglint:guardedby mu
	s  []int //hglint:guardedby mu
	ok bool  // unguarded: free access
}

// Good locks for the whole body.
func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// GoodExplicit uses the lock/unlock pair without defer.
func (c *counter) GoodExplicit() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

// Bad reads a guarded field with no lock anywhere: the mechanical-fix case.
func (c *counter) Bad() int {
	return c.n // want "guarded by c.mu"
}

// BadAfterUnlock touches guarded state after releasing the lock.
func (c *counter) BadAfterUnlock() {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	c.n = v + 1 // want "guarded by c.mu"
}

// earlyReturn releases in a terminating branch; the fall-through path still
// holds the lock, so the access is fine.
func (c *counter) earlyReturn(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return 0
	}
	v := c.n
	c.mu.Unlock()
	return v
}

// maybeUnlocked merges a locked and an unlocked path: the access must be
// flagged because one path reaches it without the lock.
func (c *counter) maybeUnlocked(flaky bool) int {
	c.mu.Lock()
	if flaky {
		c.mu.Unlock()
	}
	return c.n // want "guarded by c.mu"
}

// addLocked follows the caller-holds-the-lock naming convention.
func (c *counter) addLocked(d int) {
	c.n += d
	c.s = append(c.s, d)
}

// bump documents the same contract with an explicit holds directive.
//
//hglint:holds c.mu
func (c *counter) bump(d int) {
	c.n += d
}

// unguarded fields never need the lock.
func (c *counter) Flag() bool { return c.ok }

// newCounter may initialize guarded fields lock-free while the value is
// provably private, but not after publishing it to a goroutine.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	c.s = append(c.s, 1)
	go c.loop()
	c.n = 2 // want "guarded by c.mu"
	return c
}

func (c *counter) loop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// crossIteration is the newCoordinator bug shape: iteration two's unlocked
// write races iteration one's spawned reader.
func (c *counter) crossIteration(keys []int) {
	d := &counter{}
	for range keys {
		d.n++ // want "guarded by d.mu"
		go d.loop()
	}
}

// goroutineBody runs with nothing held; it must lock for itself.
func (c *counter) spawn() {
	go func() {
		c.n++ // want "guarded by c.mu"
	}()
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}()
}

// selectBranches exercises per-clause lock states.
func (c *counter) selectBranches(ch chan int, done chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-ch:
		c.n = v
	case <-done:
		c.n = 0
	}
}

type table struct {
	mu sync.RWMutex
	m  map[string]int //hglint:guardedby mu
}

// Get holds the read lock; RLock counts as held.
func (t *table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// Peek forgets the read lock.
func (t *table) Peek(k string) int {
	return t.m[k] // want "guarded by t.mu"
}

type broken struct {
	lk int
	a  int //hglint:guardedby lk // want "guardedby names .lk., which is not a sibling"
	b  int //hglint:guardedby zz // want "guardedby names .zz., which is not a sibling"
}

type broken2 struct {
	mu sync.Mutex
	//hglint:guardedby // want "guardedby directive needs a mutex name"
	d int
}

func use(b *broken, b2 *broken2) int { return b.a + b.b + b2.d }
