package sharedguard_test

import (
	"path/filepath"
	"strings"
	"testing"

	"hgpart/internal/lint/analysis"
	"hgpart/internal/lint/linttest"
	"hgpart/internal/lint/sharedguard"
)

func TestSharedGuard(t *testing.T) {
	linttest.Run(t, "testdata", sharedguard.Analyzer,
		"hgpart/internal/service",
		"other",
	)
}

// TestSuggestedFix asserts the mechanical getter repair: a function that
// trips the check and never touches the mutex gets a Lock/defer-Unlock
// wrapping fix.
func TestSuggestedFix(t *testing.T) {
	src := filepath.Join("testdata", "src")
	loader := analysis.NewLoader(src, "")
	pkgs, err := loader.Load("hgpart/internal/service")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := analysis.Run(src, pkgs, []*analysis.Analyzer{sharedguard.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var fixed, unfixed int
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			unfixed++
			continue
		}
		fixed++
		fix := f.Fixes[0]
		if len(fix.TextEdits) != 1 {
			t.Fatalf("fix has %d edits, want 1", len(fix.TextEdits))
		}
		text := string(fix.TextEdits[0].NewText)
		if !strings.Contains(text, ".Lock()") || !strings.Contains(text, "defer ") || !strings.Contains(text, ".Unlock()") {
			t.Errorf("fix text %q is not a Lock/defer-Unlock wrap", text)
		}
	}
	// counter.Bad and table.Peek are lock-free getters (fixable); the
	// after-unlock / maybe-unlocked / escape cases already manipulate the
	// mutex, so wrapping the body would deadlock — no fix there.
	if fixed < 2 {
		t.Errorf("got %d findings with suggested fixes, want at least 2", fixed)
	}
	if unfixed == 0 {
		t.Error("expected at least one finding without a suggested fix")
	}
}
