package seedflow_test

import (
	"testing"

	"hgpart/internal/lint/linttest"
	"hgpart/internal/lint/seedflow"
)

func TestSeedflow(t *testing.T) {
	linttest.Run(t, "testdata", seedflow.Analyzer, "seedflowtest")
}
