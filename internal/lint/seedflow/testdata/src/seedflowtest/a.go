// Fixture: sharing violations and the sanctioned pre-split patterns.
package seedflowtest

import "hgpart/internal/rng"

func capture(r *rng.RNG) {
	go func() {
		_ = r.Uint64() // want "goroutine captures \\*rng.RNG r"
	}()
}

func passShared(r *rng.RNG) {
	go worker(r) // want "passed to a goroutine"
}

func passSplit(r *rng.RNG) {
	go worker(r.Split()) // clean: fresh generator per goroutine
}

func passFresh(seed uint64) {
	go worker(rng.New(seed)) // clean: constructed at spawn
}

func send(ch chan *rng.RNG, r *rng.RNG) {
	ch <- r // want "sent on a channel"
}

func ownParam(seed uint64) {
	go func(r *rng.RNG) {
		_ = r.Uint64() // clean: the closure's own parameter
	}(rng.New(seed))
}

func ownLocal(seed uint64) {
	go func() {
		r := rng.New(seed)
		_ = r.Uint64() // clean: declared inside the goroutine
	}()
}

func annotated(r *rng.RNG) {
	go func() {
		_ = r.Uint64() //hglint:ignore seedflow single goroutine owns r after this point
	}()
}

func worker(r *rng.RNG) { _ = r.Uint64() }
