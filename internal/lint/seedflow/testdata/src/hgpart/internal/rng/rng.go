// Stub of the real internal/rng package: just enough surface for the
// seedflow fixtures (the analyzer matches the type by name and path suffix).
package rng

type RNG struct{ s uint64 }

func New(seed uint64) *RNG { return &RNG{s: seed} }

func (r *RNG) Uint64() uint64 { r.s++; return r.s }

func (r *RNG) Split() *RNG { return New(r.Uint64()) }
