// Package seedflow enforces the parallel-seed discipline: a *rng.RNG is a
// mutable stream owned by exactly one goroutine.
//
// Worker-count invariance — the property that a multistart sweep produces
// identical results at -workers=1 and -workers=8 — holds only because
// parallel work pre-splits seeds: start i derives its generator from the
// i-th split of the root seed before any goroutine launches
// (eval.RunMultistart's contract). A goroutine that captures a shared
// generator, or a generator sent through a channel, draws from the stream
// in scheduler order and silently destroys that invariance. The analyzer
// flags:
//
//   - a `go` closure capturing an outer *rng.RNG variable;
//   - a `go f(r)` call passing an existing *rng.RNG variable (as opposed to
//     a fresh r.Split() / rng.New(seed) expression evaluated at spawn);
//   - sending a *rng.RNG on a channel.
//
// The fix is always the same: split or reseed before going parallel, and
// move seeds — plain uint64s — across goroutine boundaries instead of
// generators.
package seedflow

import (
	"go/ast"
	"go/types"
	"strings"

	"hgpart/internal/lint/analysis"
)

// Analyzer is the seedflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc:  "forbid sharing *rng.RNG across goroutines (closure capture, go-call arguments, channel sends); parallel work must pre-split seeds",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGo(pass, n)
			case *ast.SendStmt:
				if tv, ok := pass.TypesInfo.Types[n.Value]; ok && isRNG(tv.Type) {
					pass.Reportf(n.Pos(),
						"*rng.RNG sent on a channel: generators are single-owner; send a seed (uint64) and reconstruct with rng.New on the receiving side")
				}
			}
			return true
		})
	}
	return nil
}

func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		checkCapture(pass, lit)
	}
	for _, arg := range g.Call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !isRNG(tv.Type) {
			continue
		}
		// A call expression (r.Split(), rng.New(seed)) hands the goroutine a
		// fresh generator it exclusively owns — the sanctioned pattern. A
		// plain variable shares live state with the spawner.
		if _, fresh := arg.(*ast.CallExpr); fresh {
			continue
		}
		pass.Reportf(arg.Pos(),
			"*rng.RNG passed to a goroutine: the spawner and the goroutine would share one stream; pass r.Split() or a pre-split seed instead")
	}
}

// checkCapture reports uses, inside the goroutine's closure, of RNG-typed
// variables declared outside it.
func checkCapture(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !isRNG(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // the closure's own parameter or local
		}
		pass.Reportf(id.Pos(),
			"goroutine captures *rng.RNG %s from the enclosing scope: results now depend on goroutine scheduling; pre-split seeds (rng.Split) before going parallel", id.Name)
		return true
	})
}

// isRNG reports whether t is rng.RNG or *rng.RNG from the internal/rng
// package.
func isRNG(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	} else if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "RNG" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "internal/rng" || strings.HasSuffix(p, "/internal/rng")
}
