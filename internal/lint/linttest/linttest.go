// Package linttest runs an analyzer over fixture packages and checks its
// findings against // want comments, mirroring the x/tools analysistest
// convention:
//
//	bad()  // want "regexp matching the finding message"
//
// A line may carry several quoted regexps, one per expected finding. Every
// expectation must be matched by a finding on its line and every finding
// must be matched by an expectation; any mismatch fails the test.
//
// Fixtures live under <testdata>/src/<pkgpath>/, with import paths equal to
// the directory path below src — so a fixture directory
// testdata/src/hgpart/internal/kway is analyzed as the package
// "hgpart/internal/kway", which is how package-scoped analyzers are
// exercised. Fixture imports resolve against the same src tree (stub
// dependency packages) and then the standard library.
package linttest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hgpart/internal/lint/analysis"
)

// expectation is one // want entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var quoteRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run analyzes the fixture packages pkgPaths under testdata/src with a and
// reports any divergence from the // want expectations via t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	loader := analysis.NewLoader(src, "")
	pkgs, err := loader.Load(pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) != len(pkgPaths) {
		t.Fatalf("loaded %d packages for %d patterns", len(pkgs), len(pkgPaths))
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, pkg, f)...)
		}
	}

	findings, err := analysis.Run(src, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

func parseWants(t *testing.T, pkg *analysis.Package, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	tf := pkg.Fset.File(f.Pos())
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			for _, q := range quoteRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", tf.Name(), pos.Line, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", tf.Name(), pos.Line, pat, err)
				}
				wants = append(wants, &expectation{
					file: relToSrc(pkg, tf.Name()),
					line: pos.Line,
					re:   re,
				})
			}
		}
	}
	return wants
}

// relToSrc converts an absolute fixture file name to the src-relative path
// that analysis.Run reports (pkg.Dir is <src>/<pkgpath>).
func relToSrc(pkg *analysis.Package, name string) string {
	src := strings.TrimSuffix(filepath.ToSlash(pkg.Dir), "/"+pkg.PkgPath)
	rel, err := filepath.Rel(src, name)
	if err != nil {
		return filepath.ToSlash(name)
	}
	return filepath.ToSlash(rel)
}
