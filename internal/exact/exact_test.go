package exact

import (
	"testing"
	"testing/quick"

	"hgpart/internal/core"
	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// brute computes the optimum by full enumeration — the oracle's oracle.
func brute(h *hypergraph.Hypergraph, bal partition.Balance) (int64, bool) {
	n := h.NumVertices()
	best := int64(1) << 62
	found := false
	sides := make([]uint8, n)
	for mask := 0; mask < 1<<n; mask++ {
		var a0, a1 int64
		for v := 0; v < n; v++ {
			sides[v] = uint8(mask >> v & 1)
			if sides[v] == 0 {
				a0 += h.VertexWeight(int32(v))
			} else {
				a1 += h.VertexWeight(int32(v))
			}
		}
		if !bal.Contains(a0) || !bal.Contains(a1) {
			continue
		}
		var cut int64
		for e := 0; e < h.NumEdges(); e++ {
			pins := h.Pins(int32(e))
			s0 := sides[pins[0]]
			for _, u := range pins[1:] {
				if sides[u] != s0 {
					cut += h.EdgeWeight(int32(e))
					break
				}
			}
		}
		if cut < best {
			best = cut
			found = true
		}
	}
	return best, found
}

func randomSmall(seed uint64, nv int) *hypergraph.Hypergraph {
	r := rng.New(seed)
	b := hypergraph.NewBuilder(nv, 2*nv)
	for i := 0; i < nv; i++ {
		b.AddVertex(int64(1 + r.Intn(4)))
	}
	for e := 0; e < 2*nv; e++ {
		size := 2 + r.Intn(3)
		pins := make([]int32, size)
		for i := range pins {
			pins[i] = int32(r.Intn(nv))
		}
		b.AddEdge(int64(1+r.Intn(2)), pins...)
	}
	return b.MustBuild()
}

func TestMatchesBruteForce(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		nv := 6 + int(seed%7) // 6..12 vertices
		h := randomSmall(seed, nv)
		bal := partition.NewBalance(h.TotalVertexWeight(), 0.25)
		want, feasible := brute(h, bal)
		res, err := Bisect(h, bal, Options{})
		if !feasible {
			return err != nil
		}
		if err != nil {
			return false
		}
		return res.Cut == want
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResultSidesAreConsistent(t *testing.T) {
	h := randomSmall(3, 10)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.3)
	res, err := Bisect(h, bal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.New(h)
	if err := p.Assign(res.Sides); err != nil {
		t.Fatal(err)
	}
	if p.Cut() != res.Cut {
		t.Fatalf("reported cut %d but sides give %d", res.Cut, p.Cut())
	}
	if !p.Legal(bal) {
		t.Fatal("optimal solution violates balance")
	}
}

func TestKnownOptimum(t *testing.T) {
	// Two 4-cliques joined by a single bridge net: optimal cut is 1.
	b := hypergraph.NewBuilder(8, 3)
	b.AddVertices(8, 1)
	b.AddEdge(1, 0, 1, 2, 3)
	b.AddEdge(1, 4, 5, 6, 7)
	b.AddEdge(1, 3, 4)
	h := b.MustBuild()
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.0)
	res, err := Bisect(h, bal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 1 {
		t.Fatalf("optimum %d, want 1", res.Cut)
	}
}

func TestInfeasibleBalance(t *testing.T) {
	b := hypergraph.NewBuilder(2, 1)
	b.AddVertex(10)
	b.AddVertex(1)
	b.AddEdge(1, 0, 1)
	h := b.MustBuild()
	// Perfect bisection of weights {10,1} is impossible.
	if _, err := Bisect(h, partition.Balance{Lo: 5, Hi: 6}, Options{}); err == nil {
		t.Fatal("infeasible balance accepted")
	}
}

func TestSizeLimit(t *testing.T) {
	h := randomSmall(4, 12)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.3)
	if _, err := Bisect(h, bal, Options{MaxVertices: 8}); err == nil {
		t.Fatal("size limit not enforced")
	}
}

func TestNodeBudget(t *testing.T) {
	h := randomSmall(5, 20)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.3)
	if _, err := Bisect(h, bal, Options{MaxNodes: 10}); err == nil {
		t.Fatal("node budget not enforced")
	}
}

func TestEmpty(t *testing.T) {
	b := hypergraph.NewBuilder(0, 0)
	h := b.MustBuild()
	if _, err := Bisect(h, partition.Balance{}, Options{}); err == nil {
		t.Fatal("empty hypergraph accepted")
	}
}

// TestFMReachesNearOptimum is the "health check" the paper recommends: on
// exactly solvable instances, the tuned FM testbench with a few starts must
// land within a modest factor of the proven optimum.
func TestFMReachesNearOptimum(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		h := randomSmall(seed+100, 14)
		bal := partition.NewBalance(h.TotalVertexWeight(), 0.25)
		opt, err := Bisect(h, bal, Options{})
		if err != nil {
			continue // infeasible draw
		}
		eng := core.NewEngine(h, core.StrongConfig(false), bal, rng.New(seed))
		r := rng.New(seed ^ 0xbeef)
		best := int64(1) << 62
		for s := 0; s < 10; s++ {
			p := partition.New(h)
			p.RandomBalanced(r.Split(), bal)
			res := eng.Run(p)
			if p.Legal(bal) && res.Cut < best {
				best = res.Cut
			}
		}
		if best > opt.Cut*2+2 {
			t.Fatalf("seed %d: FM best-of-10 %d vs optimum %d", seed, best, opt.Cut)
		}
		if best < opt.Cut {
			t.Fatalf("seed %d: FM (%d) beat the 'optimum' (%d) — exact solver is wrong", seed, best, opt.Cut)
		}
	}
}
