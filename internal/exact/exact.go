// Package exact provides an optimal 2-way partitioner for small instances
// by branch and bound. It exists for the reasons the paper gives under
// "Do check your health regularly": heuristic claims need an absolute
// yardstick where one is computable. The test suites use it to verify that
// the FM testbench and the multilevel engine reach (or approach) optimum on
// instances small enough to solve exactly, and the ablation benches use it
// to report optimality gaps.
//
// The search assigns vertices in decreasing-weight order (a classic
// symmetry/bound-strength ordering), maintains incremental net side counts,
// and prunes on (i) the current cut already matching the incumbent,
// (ii) balance infeasibility of the best possible completion, and
// (iii) a lower bound from nets already cut. Vertex 0's side is pinned to
// break the mirror symmetry unless fixed sides are provided.
package exact

import (
	"fmt"
	"math"
	"sort"

	"hgpart/internal/hypergraph"
	"hgpart/internal/partition"
)

// Options bounds the search.
type Options struct {
	// MaxVertices refuses instances larger than this (default 32); branch
	// and bound is exponential and this package is a test oracle, not a
	// production path.
	MaxVertices int
	// MaxNodes aborts after this many search nodes (default 50 million),
	// returning an error rather than a wrong "optimum".
	MaxNodes int64
}

func (o Options) withDefaults() Options {
	if o.MaxVertices <= 0 {
		o.MaxVertices = 32
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 50_000_000
	}
	return o
}

// Result is the proven optimum.
type Result struct {
	Cut   int64
	Sides []uint8
	// Nodes is the number of search-tree nodes expanded.
	Nodes int64
}

// Bisect returns a minimum-cut balanced bisection of h, or an error if the
// instance is too large, the search budget is exhausted, or no balanced
// assignment exists.
func Bisect(h *hypergraph.Hypergraph, bal partition.Balance, opt Options) (Result, error) {
	opt = opt.withDefaults()
	n := h.NumVertices()
	if n == 0 {
		return Result{}, fmt.Errorf("exact: empty hypergraph")
	}
	if n > opt.MaxVertices {
		return Result{}, fmt.Errorf("exact: %d vertices exceeds limit %d", n, opt.MaxVertices)
	}

	s := &searcher{
		h:        h,
		bal:      bal,
		opt:      opt,
		order:    weightOrder(h),
		side:     make([]uint8, n),
		bestSide: make([]uint8, n),
		bestCut:  math.MaxInt64,
		count:    make([][2]int32, h.NumEdges()),
		pinsLeft: make([]int32, h.NumEdges()),
	}
	for e := 0; e < h.NumEdges(); e++ {
		s.pinsLeft[e] = int32(h.EdgeSize(int32(e)))
	}
	// Suffix weights for the balance bound.
	s.suffixWeight = make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		s.suffixWeight[i] = s.suffixWeight[i+1] + h.VertexWeight(s.order[i])
	}

	s.branch(0, 0, 0, 0)
	if s.err != nil {
		return Result{}, s.err
	}
	if s.bestCut == math.MaxInt64 {
		return Result{}, fmt.Errorf("exact: no balanced bisection exists for bounds [%d,%d]", bal.Lo, bal.Hi)
	}
	return Result{Cut: s.bestCut, Sides: s.bestSide, Nodes: s.nodes}, nil
}

// weightOrder returns vertex indices sorted by decreasing weight (ties by
// decreasing degree, then index) — heavy vertices first makes the balance
// bound prune early.
func weightOrder(h *hypergraph.Hypergraph) []int32 {
	n := h.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		wa, wb := h.VertexWeight(va), h.VertexWeight(vb)
		if wa != wb {
			return wa > wb
		}
		da, db := h.Degree(va), h.Degree(vb)
		if da != db {
			return da > db
		}
		return va < vb
	})
	return order
}

type searcher struct {
	h   *hypergraph.Hypergraph
	bal partition.Balance
	opt Options

	order        []int32
	suffixWeight []int64

	side     []uint8
	count    [][2]int32
	pinsLeft []int32 // unassigned pins per net

	bestCut  int64
	bestSide []uint8
	nodes    int64
	err      error
}

// branch assigns order[idx] next. cut is the weight of nets already proven
// cut; areas are the current side loads.
func (s *searcher) branch(idx int, cut, area0, area1 int64) {
	if s.err != nil {
		return
	}
	s.nodes++
	if s.nodes > s.opt.MaxNodes {
		s.err = fmt.Errorf("exact: search budget of %d nodes exhausted", s.opt.MaxNodes)
		return
	}
	if cut >= s.bestCut {
		return
	}
	if idx == len(s.order) {
		if s.bal.Contains(area0) && s.bal.Contains(area1) {
			s.bestCut = cut
			copy(s.bestSide, s.side)
		}
		return
	}
	// Balance bound: each side must be able to reach Lo and must not
	// already exceed Hi.
	rest := s.suffixWeight[idx]
	if area0 > s.bal.Hi || area1 > s.bal.Hi {
		return
	}
	if area0+rest < s.bal.Lo || area1+rest < s.bal.Lo {
		return
	}

	v := s.order[idx]
	w := s.h.VertexWeight(v)
	// Symmetry breaking: the heaviest vertex goes to side 0 only.
	sidesToTry := []uint8{0, 1}
	if idx == 0 {
		sidesToTry = sidesToTry[:1]
	}
	for _, sd := range sidesToTry {
		delta := s.place(v, sd)
		var a0, a1 int64 = area0, area1
		if sd == 0 {
			a0 += w
		} else {
			a1 += w
		}
		s.side[v] = sd
		s.branch(idx+1, cut+delta, a0, a1)
		s.unplace(v, sd)
	}
}

// place assigns v to side sd, updating net counts, and returns the weight
// of nets that became cut by this placement (a net is charged exactly once,
// at the moment its second side is first touched).
func (s *searcher) place(v int32, sd uint8) int64 {
	var delta int64
	for _, e := range s.h.IncidentEdges(v) {
		c := &s.count[e]
		if c[1-sd] > 0 && c[sd] == 0 {
			delta += s.h.EdgeWeight(e)
		}
		c[sd]++
		s.pinsLeft[e]--
	}
	return delta
}

func (s *searcher) unplace(v int32, sd uint8) {
	for _, e := range s.h.IncidentEdges(v) {
		s.count[e][sd]--
		s.pinsLeft[e]++
	}
}
