package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseeded stream differs at %d: %d != %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwoAndGeneral(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
		if v := r.Uint64n(10); v >= 10 {
			t.Fatalf("Uint64n(10) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestIntnApproximatelyUniform(t *testing.T) {
	r := New(5)
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expect := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 0.05*expect {
			t.Fatalf("bucket %d count %d deviates >5%% from %f", b, c, expect)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(6)
	s := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.ShuffleInts(s)
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset sum: %d != %d", got, sum)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(8)
	const p = 0.25
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%.2f) mean %.3f, want about %.3f", p, mean, want)
	}
}

func TestGeometricP1(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestGeometricPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(10)
	child := r.Split()
	// Child draws must not be identical to parent's subsequent draws.
	same := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == r.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("Split stream mirrors parent: %d/100 matches", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(11).Split()
	b := New(11).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(12)
	trues := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)/n-0.5) > 0.02 {
		t.Fatalf("Bool true fraction %.4f far from 0.5", float64(trues)/n)
	}
}

func TestUint32AndInt63(t *testing.T) {
	r := New(20)
	seenHigh := false
	for i := 0; i < 1000; i++ {
		v := r.Uint32()
		if v > 1<<31 {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Fatal("Uint32 never exceeded 2^31 in 1000 draws")
	}
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestShuffleFunc(t *testing.T) {
	r := New(21)
	s := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	// Multiset preserved.
	count := map[string]int{}
	for _, x := range s {
		count[x]++
	}
	for _, x := range orig {
		if count[x] != 1 {
			t.Fatalf("shuffle lost %q", x)
		}
	}
}
