// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the library.
//
// Experimental reproducibility is a central theme of the paper this library
// reproduces: every randomized component (initial solutions, tie-breaking,
// synthetic netlist generation, coarsening visit order) must be replayable
// from a single seed. math/rand would work, but its exact stream is not
// guaranteed across Go releases; this package pins the algorithm
// (xoshiro256** seeded via SplitMix64) so that results recorded in
// EXPERIMENTS.md can be regenerated bit-for-bit.
package rng

// RNG is a xoshiro256** generator. The zero value is not valid; use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed via SplitMix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator state from seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits to remove modulo bias.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniformly random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p, counting the number of failures before the first success
// (support {0, 1, 2, ...}). p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	n := 0
	for r.Float64() >= p {
		n++
		if n > 1<<20 {
			return n // safety bound; probability ~0 for sane p
		}
	}
	return n
}

// Split returns a new generator seeded from this generator's stream. The
// child stream is independent of subsequent draws from the parent, which
// lets experiment drivers hand each trial its own reproducible generator.
func (r *RNG) Split() *RNG { return New(r.Uint64()) }
