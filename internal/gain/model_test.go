package gain

import (
	"fmt"
	"testing"

	"hgpart/internal/rng"
)

// This file is the property-based differential layer for the gain container:
//
//   - TestContainerMatchesModel drives random Insert/Remove/Update/Head/Clear
//     interleavings and checks every observation against a naive map-based
//     reference model, verifying the structural invariants after each step
//     (the in-process analogue of running under -check-invariants).
//   - TestLegacyEquivalence replays identical operation sequences on the
//     optimized Container and the frozen seed LegacyContainer and requires
//     byte-identical observable behavior, including intra-bucket positions
//     and Random-order RNG draws.
//   - TestClearedReuseEquivalentToFresh is the arena-reuse safety proof: a
//     container that has survived an arbitrary workload and been Clear()ed
//     (or Reinit()ed) must be observably indistinguishable from a fresh one.

// modelEntry is the reference model's view of one contained vertex.
type modelEntry struct {
	side uint8
	key  int64
}

// opSeq generates a reproducible random operation sequence. Each step is
// encoded as (op, vertex, side, key/delta) drawn from r.
type op struct {
	kind  int // 0 insert, 1 remove, 2 update, 3 head, 4 clear, 5 walkdown
	v     int32
	side  uint8
	key   int64
	delta int64
}

func randomOps(r *rng.RNG, n, steps int, clearEvery int) []op {
	ops := make([]op, 0, steps)
	for i := 0; i < steps; i++ {
		kind := r.Intn(10)
		switch {
		case kind < 3:
			kind = 0
		case kind < 5:
			kind = 1
		case kind < 8:
			kind = 2
		case kind < 9:
			kind = 3
		default:
			kind = 5
		}
		if clearEvery > 0 && i > 0 && i%clearEvery == 0 {
			kind = 4
		}
		ops = append(ops, op{
			kind:  kind,
			v:     int32(r.Intn(n)),
			side:  uint8(r.Intn(2)),
			key:   int64(r.Intn(21) - 10),
			delta: int64(r.Intn(9) - 4),
		})
	}
	return ops
}

// bucketAPI is the common observable surface of Container and
// LegacyContainer, letting the differential driver treat them uniformly.
type bucketAPI interface {
	Contains(v int32) bool
	Key(v int32) int64
	SideOf(v int32) uint8
	Size(s uint8) int
	Insert(v int32, s uint8, key int64)
	Remove(v int32)
	Update(v int32, delta int64)
	Head(s uint8) (int32, int64, bool)
	WalkDown(s uint8, fn func(v int32, key int64) bool)
	Clear()
	VerifyInvariants() error
}

// apply runs one op against c, skipping preconditions that would panic
// (double insert, absent remove/update). It returns a string describing the
// observation the op produced, for cross-implementation comparison.
func apply(c bucketAPI, o op) string {
	switch o.kind {
	case 0:
		if c.Contains(o.v) {
			return "skip"
		}
		c.Insert(o.v, o.side, o.key)
		return "insert"
	case 1:
		if !c.Contains(o.v) {
			return "skip"
		}
		c.Remove(o.v)
		return "remove"
	case 2:
		if !c.Contains(o.v) {
			return "skip"
		}
		c.Update(o.v, o.delta)
		return "update"
	case 3:
		v, k, ok := c.Head(o.side)
		return fmt.Sprintf("head(%d)=%d,%d,%v", o.side, v, k, ok)
	case 4:
		c.Clear()
		return "clear"
	case 5:
		var sb []byte
		c.WalkDown(o.side, func(v int32, key int64) bool {
			sb = append(sb, fmt.Sprintf("%d:%d;", v, key)...)
			return true
		})
		return "walk " + string(sb)
	}
	return "?"
}

func clamp(key, maxKey int64) int64 {
	if key > maxKey {
		return maxKey
	}
	if key < -maxKey {
		return -maxKey
	}
	return key
}

func TestContainerMatchesModel(t *testing.T) {
	const n, maxKey = 40, 10
	for _, order := range []Order{LIFO, FIFO, Random} {
		t.Run(order.String(), func(t *testing.T) {
			r := rng.New(42)
			c := NewContainer(n, maxKey, order, rng.New(7))
			model := map[int32]modelEntry{}
			ops := randomOps(r, n, 4000, 500)
			for i, o := range ops {
				switch o.kind {
				case 0:
					if _, ok := model[o.v]; ok {
						continue
					}
					c.Insert(o.v, o.side, o.key)
					model[o.v] = modelEntry{side: o.side, key: o.key}
				case 1:
					if _, ok := model[o.v]; !ok {
						continue
					}
					c.Remove(o.v)
					delete(model, o.v)
				case 2:
					e, ok := model[o.v]
					if !ok {
						continue
					}
					c.Update(o.v, o.delta)
					e.key += o.delta
					model[o.v] = e
				case 3:
					v, k, ok := c.Head(o.side)
					var want int64
					found := false
					for _, e := range model {
						if e.side != o.side {
							continue
						}
						ck := clamp(e.key, maxKey)
						if !found || ck > want {
							want, found = ck, true
						}
					}
					if ok != found {
						t.Fatalf("step %d: Head(%d) ok=%v, model says %v", i, o.side, ok, found)
					}
					if ok {
						if e := model[v]; e.side != o.side || e.key != k {
							t.Fatalf("step %d: Head(%d) returned (%d,%d), model has %+v", i, o.side, v, k, e)
						}
						if clamp(k, maxKey) != want {
							t.Fatalf("step %d: Head(%d) key %d clamps to %d, model max %d", i, o.side, k, clamp(k, maxKey), want)
						}
					}
				case 4:
					c.Clear()
					model = map[int32]modelEntry{}
				case 5:
					seen := map[int32]bool{}
					last := int64(maxKey + 1)
					c.WalkDown(o.side, func(v int32, key int64) bool {
						e, ok := model[v]
						if !ok || e.side != o.side || e.key != key {
							t.Fatalf("step %d: WalkDown(%d) yielded (%d,%d), model has %+v (present=%v)", i, o.side, v, key, e, ok)
						}
						if ck := clamp(key, maxKey); ck > last {
							t.Fatalf("step %d: WalkDown(%d) keys not non-increasing: %d after %d", i, o.side, ck, last)
						} else {
							last = ck
						}
						seen[v] = true
						return true
					})
					for v, e := range model {
						if e.side == o.side && !seen[v] {
							t.Fatalf("step %d: WalkDown(%d) missed vertex %d", i, o.side, v)
						}
					}
				}
				// Cross-check aggregate state and structure after every op.
				var sizes [2]int
				for _, e := range model {
					sizes[e.side]++
				}
				if c.Size(0) != sizes[0] || c.Size(1) != sizes[1] {
					t.Fatalf("step %d: sizes (%d,%d), model (%d,%d)", i, c.Size(0), c.Size(1), sizes[0], sizes[1])
				}
				for v := int32(0); v < n; v++ {
					_, ok := model[v]
					if c.Contains(v) != ok {
						t.Fatalf("step %d: Contains(%d)=%v, model %v", i, v, c.Contains(v), ok)
					}
					if ok {
						e := model[v]
						if c.Key(v) != e.key || c.SideOf(v) != e.side {
							t.Fatalf("step %d: vertex %d carries (%d,%d), model %+v", i, v, c.SideOf(v), c.Key(v), e)
						}
					}
				}
				if err := c.VerifyInvariants(); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
		})
	}
}

// dump captures the complete observable ordering of a container: per side,
// the WalkDown sequence (which pins both bucket ordering and intra-bucket
// positions) plus the head and size.
func dump(c bucketAPI) string {
	out := ""
	for s := uint8(0); s < 2; s++ {
		v, k, ok := c.Head(s)
		out += fmt.Sprintf("side%d size=%d head=%d,%d,%v [", s, c.Size(s), v, k, ok)
		c.WalkDown(s, func(v int32, key int64) bool {
			out += fmt.Sprintf("%d:%d ", v, key)
			return true
		})
		out += "]\n"
	}
	return out
}

func TestLegacyEquivalence(t *testing.T) {
	const n, maxKey = 48, 9
	for _, order := range []Order{LIFO, FIFO, Random} {
		t.Run(order.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				ops := randomOps(rng.New(seed), n, 3000, 700)
				opt := NewContainer(n, maxKey, order, rng.New(seed*13))
				leg := NewLegacyContainer(n, maxKey, order, rng.New(seed*13))
				for i, o := range ops {
					a := apply(opt, o)
					b := apply(leg, o)
					if a != b {
						t.Fatalf("seed %d step %d: optimized observed %q, legacy %q", seed, i, a, b)
					}
					if i%97 == 0 {
						if da, db := dump(opt), dump(leg); da != db {
							t.Fatalf("seed %d step %d: state diverged\noptimized:\n%s\nlegacy:\n%s", seed, i, da, db)
						}
					}
				}
				if da, db := dump(opt), dump(leg); da != db {
					t.Fatalf("seed %d final state diverged\noptimized:\n%s\nlegacy:\n%s", seed, da, db)
				}
			}
		})
	}
}

func TestClearedReuseEquivalentToFresh(t *testing.T) {
	const n, maxKey = 32, 8
	for _, order := range []Order{LIFO, FIFO, Random} {
		t.Run(order.String(), func(t *testing.T) {
			for seed := uint64(1); seed <= 6; seed++ {
				// Phase 1: an arbitrary prior workload on the reused container.
				reused := NewContainer(n, maxKey, order, rng.New(99))
				for _, o := range randomOps(rng.New(seed), n, 1500, 400) {
					apply(reused, o)
				}
				reused.Clear()
				// Re-arm the RNG so Random-order draws align with the fresh
				// container; Reinit also exercises the arena-reuse path.
				reused.Reinit(n, maxKey, order, rng.New(seed*31))
				fresh := NewContainer(n, maxKey, order, rng.New(seed*31))

				// Phase 2: identical workloads must be indistinguishable.
				for i, o := range randomOps(rng.New(seed+1000), n, 1500, 350) {
					a := apply(reused, o)
					b := apply(fresh, o)
					if a != b {
						t.Fatalf("seed %d step %d: reused observed %q, fresh %q", seed, i, a, b)
					}
					if err := reused.VerifyInvariants(); err != nil {
						t.Fatalf("seed %d step %d: reused container corrupt: %v", seed, i, err)
					}
				}
				if da, db := dump(reused), dump(fresh); da != db {
					t.Fatalf("seed %d: reused and fresh containers diverged\nreused:\n%s\nfresh:\n%s", seed, da, db)
				}
			}
		})
	}
}

// TestClearAfterEpochWraparound forces the epoch counter past its wrap point
// and verifies membership is still fully reset.
func TestClearAfterEpochWraparound(t *testing.T) {
	c := NewContainer(4, 3, LIFO, nil)
	c.cur = 1<<32 - 2
	c.Insert(0, 0, 1)
	c.Clear() // cur -> MaxUint32
	c.Insert(1, 0, 2)
	c.Clear() // wraps: gen cleared, cur restarts
	for v := int32(0); v < 4; v++ {
		if c.Contains(v) {
			t.Fatalf("vertex %d survived the wraparound Clear", v)
		}
	}
	c.Insert(2, 1, -1)
	if !c.Contains(2) || c.Contains(1) {
		t.Fatal("post-wraparound membership wrong")
	}
	if err := c.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReinitGrowAndShrink reuses one container across different sizes the way
// a multilevel engine walks its hierarchy.
func TestReinitGrowAndShrink(t *testing.T) {
	c := NewContainer(8, 4, LIFO, nil)
	c.Insert(3, 0, 2)
	for _, size := range []struct {
		n      int
		maxKey int64
	}{{32, 10}, {4, 2}, {64, 1}, {16, 20}} {
		c.Reinit(size.n, size.maxKey, LIFO, nil)
		if c.Size(0)+c.Size(1) != 0 {
			t.Fatalf("Reinit(%d,%d) left %d elements", size.n, size.maxKey, c.Size(0)+c.Size(1))
		}
		for v := int32(0); v < int32(size.n); v++ {
			if c.Contains(v) {
				t.Fatalf("Reinit(%d,%d): vertex %d leaked in", size.n, size.maxKey, v)
			}
		}
		// Exercise and verify at the new geometry.
		for v := int32(0); v < int32(size.n); v += 2 {
			c.Insert(v, uint8(v%2), int64(v)%(2*size.maxKey)-size.maxKey)
		}
		if err := c.VerifyInvariants(); err != nil {
			t.Fatalf("Reinit(%d,%d): %v", size.n, size.maxKey, err)
		}
	}
}
