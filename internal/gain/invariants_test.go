package gain

import (
	"strings"
	"testing"
)

// filled builds a small container with a few elements on both sides.
func filled() *Container {
	c := NewContainer(8, 4, LIFO, nil)
	c.Insert(0, 0, 2)
	c.Insert(1, 0, 2)
	c.Insert(2, 0, -1)
	c.Insert(3, 1, 0)
	c.Insert(4, 1, 3)
	return c
}

func TestVerifyInvariantsHealthy(t *testing.T) {
	c := filled()
	if err := c.VerifyInvariants(); err != nil {
		t.Fatalf("healthy container flagged: %v", err)
	}
	c.Update(1, -3)
	c.Remove(4)
	if err := c.VerifyInvariants(); err != nil {
		t.Fatalf("after update/remove: %v", err)
	}
	if !c.CheckInvariants() {
		t.Fatal("CheckInvariants disagrees with VerifyInvariants")
	}
}

// Each corruption below simulates a distinct internal bug; VerifyInvariants
// must name the right violation in its error.
func TestVerifyInvariantsDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(c *Container)
		want    string
	}{
		{"dangling tail", func(c *Container) {
			idx := c.clampIdx(1) // empty bucket
			c.tail[0][idx] = 2 + 1
		}, "nil head but tail"},
		{"head with predecessor", func(c *Container) {
			c.prev[c.head[0][c.clampIdx(2)]-1] = 3 + 1
		}, "has a predecessor"},
		{"linked but not marked in", func(c *Container) {
			c.gen[0] = c.cur - 1
			c.size[0]-- // keep size counters consistent so the membership check fires first
		}, "not marked in"},
		{"wrong bucket", func(c *Container) {
			c.key[2] = 3 // element sits in bucket for key -1
		}, "filed under"},
		{"broken back-link", func(c *Container) {
			h := c.head[0][c.clampIdx(2)] - 1
			c.prev[c.next[h]-1] = 5 + 1
		}, "back-link"},
		{"size drift", func(c *Container) {
			c.size[1] = 7
		}, "size counters"},
		{"bucket above cursor", func(c *Container) {
			c.head[0][c.nbucket-1] = 1 + 1
			c.tail[0][c.nbucket-1] = 1 + 1
		}, "above max-gain cursor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := filled()
			tc.corrupt(c)
			err := c.VerifyInvariants()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("wrong violation reported: %v (want substring %q)", err, tc.want)
			}
			if c.CheckInvariants() {
				t.Fatal("CheckInvariants returned true on corrupted container")
			}
		})
	}
}
