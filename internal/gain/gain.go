// Package gain implements the FM gain-bucket container: for each source
// side, an array of doubly-linked buckets indexed by gain with O(1)
// insert/remove and O(1) amortized select-max.
//
// The container makes explicit the "implicit implementation decisions" the
// paper shows to dominate solution quality:
//
//   - where a (re)inserted element lands inside its bucket — LIFO (head),
//     FIFO (tail) or Random — following Hagen, Huang and Kahng (EDAC'95),
//     whose experiments this library's ablation benches reproduce;
//   - segregated per-side buckets, which create the equal-gain tie between
//     sides that the Away/Part0/Toward bias policies (internal/core) resolve.
//
// The same container serves plain FM (keys are gains) and CLIP (keys are
// cumulative delta gains; all elements start in the zero bucket).
package gain

import (
	"fmt"

	"hgpart/internal/rng"
)

// Order selects where an element lands within its bucket's list.
type Order int

const (
	// LIFO inserts at the bucket head. Hagen et al. showed LIFO is much
	// preferable to FIFO or Random; since that work every serious FM uses it.
	LIFO Order = iota
	// FIFO inserts at the bucket tail.
	FIFO
	// Random inserts at the head or tail with equal probability. True
	// uniform-position insertion is O(bucket length); head-or-tail is the
	// standard O(1) approximation and is what "random insertion" ablations
	// in this library mean.
	Random
)

// String returns the order's conventional name.
func (o Order) String() string {
	switch o {
	case LIFO:
		return "LIFO"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	}
	return "Order(?)"
}

const nilIdx int32 = -1

// Container holds movable vertices keyed by gain, segregated by source side.
type Container struct {
	offset  int64 // bucket index = key + offset
	nbucket int

	head [2][]int32
	tail [2][]int32

	next, prev []int32
	key        []int64
	side       []uint8
	in         []bool

	maxIdx [2]int // index of highest possibly-non-empty bucket; -1 when empty
	size   [2]int

	order Order
	r     *rng.RNG
}

// NewContainer creates a container for numVertices vertices whose keys are
// guaranteed to stay within [-maxKey, +maxKey]. Keys outside the range are
// clamped (standard bucket-array practice; with unit edge weights the bound
// from Hypergraph.MaxWeightedDegree is exact and clamping never triggers).
// r may be nil unless order is Random.
func NewContainer(numVertices int, maxKey int64, order Order, r *rng.RNG) *Container {
	if maxKey < 1 {
		maxKey = 1
	}
	n := int(2*maxKey + 1)
	c := &Container{
		offset:  maxKey,
		nbucket: n,
		next:    make([]int32, numVertices),
		prev:    make([]int32, numVertices),
		key:     make([]int64, numVertices),
		side:    make([]uint8, numVertices),
		in:      make([]bool, numVertices),
		order:   order,
		r:       r,
	}
	for s := 0; s < 2; s++ {
		c.head[s] = make([]int32, n)
		c.tail[s] = make([]int32, n)
		for i := range c.head[s] {
			c.head[s][i] = nilIdx
			c.tail[s][i] = nilIdx
		}
		c.maxIdx[s] = -1
	}
	return c
}

func (c *Container) clampIdx(key int64) int {
	i := key + c.offset
	if i < 0 {
		i = 0
	}
	if i >= int64(c.nbucket) {
		i = int64(c.nbucket) - 1
	}
	return int(i)
}

// Contains reports whether v is currently in the container.
func (c *Container) Contains(v int32) bool { return c.in[v] }

// Key returns v's current key; only meaningful while Contains(v).
func (c *Container) Key(v int32) int64 { return c.key[v] }

// SideOf returns the side under which v was inserted.
func (c *Container) SideOf(v int32) uint8 { return c.side[v] }

// Size returns the number of elements filed under side s.
func (c *Container) Size(s uint8) int { return c.size[s] }

// Insert files v under side s with the given key. v must not already be in
// the container.
func (c *Container) Insert(v int32, s uint8, key int64) {
	if c.in[v] {
		panic("gain: double insert")
	}
	c.in[v] = true
	c.key[v] = key
	c.side[v] = s
	idx := c.clampIdx(key)

	atHead := true
	switch c.order {
	case FIFO:
		atHead = false
	case Random:
		atHead = c.r.Bool()
	}
	h, t := c.head[s][idx], c.tail[s][idx]
	if h == nilIdx {
		c.head[s][idx], c.tail[s][idx] = v, v
		c.next[v], c.prev[v] = nilIdx, nilIdx
	} else if atHead {
		c.next[v] = h
		c.prev[v] = nilIdx
		c.prev[h] = v
		c.head[s][idx] = v
	} else {
		c.prev[v] = t
		c.next[v] = nilIdx
		c.next[t] = v
		c.tail[s][idx] = v
	}
	if idx > c.maxIdx[s] {
		c.maxIdx[s] = idx
	}
	c.size[s]++
}

// Remove unfiles v. v must be in the container.
func (c *Container) Remove(v int32) {
	if !c.in[v] {
		panic("gain: remove of absent vertex")
	}
	s := c.side[v]
	idx := c.clampIdx(c.key[v])
	if c.prev[v] != nilIdx {
		c.next[c.prev[v]] = c.next[v]
	} else {
		c.head[s][idx] = c.next[v]
	}
	if c.next[v] != nilIdx {
		c.prev[c.next[v]] = c.prev[v]
	} else {
		c.tail[s][idx] = c.prev[v]
	}
	c.in[v] = false
	c.size[s]--
	// maxIdx is lazily repaired in Head.
}

// Update changes v's key by delta, removing and reinserting it so its
// position within the target bucket follows the insertion order. Calling
// Update with delta == 0 is meaningful: under the paper's "AllDeltaGain"
// policy a zero-delta update still reinserts the vertex and thereby shifts
// its position within the same bucket.
func (c *Container) Update(v int32, delta int64) {
	s := c.side[v]
	k := c.key[v] + delta
	c.Remove(v)
	c.Insert(v, s, k)
}

// Head returns the first vertex of the highest non-empty bucket for side s.
// ok is false when side s is empty. This is the only element FM selection
// examines ("partitioners typically look at only the first move in a
// bucket") — if the returned move is illegal, the engine skips the side.
func (c *Container) Head(s uint8) (v int32, key int64, ok bool) {
	if c.size[s] == 0 {
		c.maxIdx[s] = -1
		return 0, 0, false
	}
	for c.maxIdx[s] >= 0 && c.head[s][c.maxIdx[s]] == nilIdx {
		c.maxIdx[s]--
	}
	if c.maxIdx[s] < 0 {
		return 0, 0, false
	}
	v = c.head[s][c.maxIdx[s]]
	return v, c.key[v], true
}

// WalkBucket calls fn for each vertex in the bucket containing key on side
// s, in list order, stopping early if fn returns false. Used by the
// "look beyond the first move" ablation (LookPastIllegal).
func (c *Container) WalkBucket(s uint8, key int64, fn func(v int32) bool) {
	idx := c.clampIdx(key)
	for v := c.head[s][idx]; v != nilIdx; v = c.next[v] {
		if !fn(v) {
			return
		}
	}
}

// WalkDown calls fn for every vertex on side s in non-increasing key order,
// stopping early if fn returns false.
func (c *Container) WalkDown(s uint8, fn func(v int32, key int64) bool) {
	for idx := c.maxIdx[s]; idx >= 0; idx-- {
		for v := c.head[s][idx]; v != nilIdx; v = c.next[v] {
			if !fn(v, c.key[v]) {
				return
			}
		}
	}
}

// Clear empties the container, retaining its allocations for the next pass.
func (c *Container) Clear() {
	for s := 0; s < 2; s++ {
		for i := 0; i <= c.maxIdx[s]; i++ {
			c.head[s][i] = nilIdx
			c.tail[s][i] = nilIdx
		}
		c.maxIdx[s] = -1
		c.size[s] = 0
	}
	for i := range c.in {
		c.in[i] = false
	}
}

// CheckInvariants verifies the internal linked-list structure; used by
// property-based tests. It returns false if any invariant is violated.
func (c *Container) CheckInvariants() bool { return c.VerifyInvariants() == nil }

// VerifyInvariants is CheckInvariants with a structured error describing the
// first violation found: dangling tails, broken back-links, elements filed in
// the wrong bucket, list cycles and size-counter drift. Debug-mode engine
// runs (core.Config.CheckInvariants) use it to convert silent gain-structure
// corruption into an error the evaluation harness can record.
func (c *Container) VerifyInvariants() error {
	counted := [2]int{}
	for s := uint8(0); s < 2; s++ {
		for idx := 0; idx < c.nbucket; idx++ {
			h := c.head[s][idx]
			if h == nilIdx {
				if c.tail[s][idx] != nilIdx {
					return fmt.Errorf("gain: side %d bucket %d has nil head but tail %d", s, idx, c.tail[s][idx])
				}
				continue
			}
			if c.prev[h] != nilIdx {
				return fmt.Errorf("gain: side %d bucket %d head %d has a predecessor", s, idx, h)
			}
			var last int32 = nilIdx
			for v := h; v != nilIdx; v = c.next[v] {
				if !c.in[v] {
					return fmt.Errorf("gain: vertex %d linked but not marked in", v)
				}
				if c.side[v] != s || c.clampIdx(c.key[v]) != idx {
					return fmt.Errorf("gain: vertex %d filed under side %d bucket %d but carries side %d key %d",
						v, s, idx, c.side[v], c.key[v])
				}
				if c.next[v] != nilIdx && c.prev[c.next[v]] != v {
					return fmt.Errorf("gain: back-link of %d does not return to %d", c.next[v], v)
				}
				last = v
				counted[s]++
				if counted[s] > len(c.in) {
					return fmt.Errorf("gain: cycle detected on side %d", s)
				}
			}
			if c.tail[s][idx] != last {
				return fmt.Errorf("gain: side %d bucket %d tail is %d, list ends at %d", s, idx, c.tail[s][idx], last)
			}
		}
	}
	if counted[0] != c.size[0] || counted[1] != c.size[1] {
		return fmt.Errorf("gain: size counters (%d,%d) disagree with linked elements (%d,%d)",
			c.size[0], c.size[1], counted[0], counted[1])
	}
	return nil
}

// HeadsDown calls fn for the head of each non-empty bucket on side s in
// non-increasing key order, stopping early if fn returns false. FM variants
// that skip only the corked bucket (rather than the whole side) use this to
// examine the next bucket's head.
func (c *Container) HeadsDown(s uint8, fn func(v int32, key int64) bool) {
	for idx := c.maxIdx[s]; idx >= 0; idx-- {
		v := c.head[s][idx]
		if v == nilIdx {
			continue
		}
		if !fn(v, c.key[v]) {
			return
		}
	}
}
