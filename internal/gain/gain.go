// Package gain implements the FM gain-bucket container: for each source
// side, an array of doubly-linked buckets indexed by gain with O(1)
// insert/remove and O(1) amortized select-max.
//
// The container makes explicit the "implicit implementation decisions" the
// paper shows to dominate solution quality:
//
//   - where a (re)inserted element lands inside its bucket — LIFO (head),
//     FIFO (tail) or Random — following Hagen, Huang and Kahng (EDAC'95),
//     whose experiments this library's ablation benches reproduce;
//   - segregated per-side buckets, which create the equal-gain tie between
//     sides that the Away/Part0/Toward bias policies (internal/core) resolve.
//
// The same container serves plain FM (keys are gains) and CLIP (keys are
// cumulative delta gains; all elements start in the zero bucket).
//
// This is the optimized arena implementation of the structure: membership is
// an epoch stamp (Clear is O(touched buckets), not O(vertices)), links and
// bucket heads are encoded as vertex+1 so empty slots are zero and bucket
// resets compile to memclr, and Update relinks in place instead of paying a
// full Remove+Insert. The original, straightforward seed implementation is
// preserved verbatim as LegacyContainer (legacy.go) and serves as the
// differential-testing oracle: TestLegacyEquivalence drives both under long
// random operation interleavings and requires identical observable behavior.
package gain

import (
	"fmt"
	"math"

	"hgpart/internal/rng"
)

// Order selects where an element lands within its bucket's list.
type Order int

const (
	// LIFO inserts at the bucket head. Hagen et al. showed LIFO is much
	// preferable to FIFO or Random; since that work every serious FM uses it.
	LIFO Order = iota
	// FIFO inserts at the bucket tail.
	FIFO
	// Random inserts at the head or tail with equal probability. True
	// uniform-position insertion is O(bucket length); head-or-tail is the
	// standard O(1) approximation and is what "random insertion" ablations
	// in this library mean.
	Random
)

// String returns the order's conventional name.
func (o Order) String() string {
	switch o {
	case LIFO:
		return "LIFO"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	}
	return "Order(?)"
}

// Container holds movable vertices keyed by gain, segregated by source side.
//
// Internal encoding: head/tail/next/prev hold vertex+1, with 0 meaning
// "none" — zeroing a bucket range empties it, which is what lets Clear use
// the runtime's bulk memclr. gen[v] == cur marks v as present; bumping cur
// evicts every vertex in O(1) without touching per-vertex state, so stale
// key/side entries from a previous pass can never leak into the next one.
type Container struct {
	offset  int64 // bucket index = key + offset
	nbucket int

	head [2][]int32 // vertex+1; 0 = empty bucket
	tail [2][]int32

	next, prev []int32 // vertex+1; 0 = end of list
	key        []int64
	side       []uint8
	gen        []uint32 // gen[v] == cur ⇔ v is in the container
	cur        uint32

	maxIdx [2]int // cached max-gain cursor: highest possibly-non-empty bucket; -1 when empty
	size   [2]int

	order Order
	r     *rng.RNG
}

// NewContainer creates a container for numVertices vertices whose keys are
// guaranteed to stay within [-maxKey, +maxKey]. Keys outside the range are
// clamped (standard bucket-array practice; with unit edge weights the bound
// from Hypergraph.MaxWeightedDegree is exact and clamping never triggers).
// r may be nil unless order is Random.
func NewContainer(numVertices int, maxKey int64, order Order, r *rng.RNG) *Container {
	c := &Container{}
	c.Reinit(numVertices, maxKey, order, r)
	return c
}

// Reinit rebinds the container to a new vertex count and key range, reusing
// the existing backing arrays whenever their capacity suffices. It leaves the
// container empty (like Clear) and is the arena-reuse entry point for engines
// that walk a multilevel hierarchy: one scratch container serves every level
// instead of a fresh allocation per level.
func (c *Container) Reinit(numVertices int, maxKey int64, order Order, r *rng.RNG) {
	if maxKey < 1 {
		maxKey = 1
	}
	n := int(2*maxKey + 1)
	c.offset = maxKey
	c.nbucket = n
	c.order = order
	c.r = r

	c.next = grow32(c.next, numVertices)
	c.prev = grow32(c.prev, numVertices)
	c.key = grow64(c.key, numVertices)
	if cap(c.side) >= numVertices {
		c.side = c.side[:numVertices]
	} else {
		c.side = make([]uint8, numVertices)
	}
	// Membership must be a full reset: a grown-within-capacity gen slice may
	// expose stale stamps equal to cur, so restart the epoch from scratch.
	if cap(c.gen) >= numVertices {
		c.gen = c.gen[:numVertices]
		clear(c.gen)
	} else {
		c.gen = make([]uint32, numVertices)
	}
	c.cur = 1

	for s := 0; s < 2; s++ {
		if cap(c.head[s]) >= n {
			c.head[s] = c.head[s][:n]
			c.tail[s] = c.tail[s][:n]
			clear(c.head[s])
			clear(c.tail[s])
		} else {
			c.head[s] = make([]int32, n)
			c.tail[s] = make([]int32, n)
		}
		c.maxIdx[s] = -1
		c.size[s] = 0
	}
}

func grow32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func grow64(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

//hglint:hotpath
func (c *Container) clampIdx(key int64) int {
	i := key + c.offset
	if i < 0 {
		i = 0
	}
	if i >= int64(c.nbucket) {
		i = int64(c.nbucket) - 1
	}
	return int(i)
}

// Contains reports whether v is currently in the container.
//
//hglint:hotpath
func (c *Container) Contains(v int32) bool { return c.gen[v] == c.cur }

// Key returns v's current key; only meaningful while Contains(v).
//
//hglint:hotpath
func (c *Container) Key(v int32) int64 { return c.key[v] }

// SideOf returns the side under which v was inserted.
//
//hglint:hotpath
func (c *Container) SideOf(v int32) uint8 { return c.side[v] }

// Size returns the number of elements filed under side s.
//
//hglint:hotpath
func (c *Container) Size(s uint8) int { return c.size[s] }

// link files v (already carrying key/side state) into bucket idx of side s,
// at the head or tail per the insertion order. Exactly one RNG draw happens
// for Random order regardless of bucket occupancy, matching the legacy
// container's draw sequence bit for bit.
//
//hglint:hotpath
func (c *Container) link(v int32, s uint8, idx int) {
	atHead := true
	switch c.order {
	case FIFO:
		atHead = false
	case Random:
		atHead = c.r.Bool()
	}
	n := v + 1
	h := c.head[s][idx]
	if h == 0 {
		c.head[s][idx], c.tail[s][idx] = n, n
		c.next[v], c.prev[v] = 0, 0
	} else if atHead {
		c.next[v] = h
		c.prev[v] = 0
		c.prev[h-1] = n
		c.head[s][idx] = n
	} else {
		t := c.tail[s][idx]
		c.prev[v] = t
		c.next[v] = 0
		c.next[t-1] = n
		c.tail[s][idx] = n
	}
	if idx > c.maxIdx[s] {
		c.maxIdx[s] = idx
	}
}

// unlink removes v from bucket idx of side s without touching membership.
//
//hglint:hotpath
func (c *Container) unlink(v int32, s uint8, idx int) {
	pv, nx := c.prev[v], c.next[v]
	if pv != 0 {
		c.next[pv-1] = nx
	} else {
		c.head[s][idx] = nx
	}
	if nx != 0 {
		c.prev[nx-1] = pv
	} else {
		c.tail[s][idx] = pv
	}
}

// Insert files v under side s with the given key. v must not already be in
// the container.
//
//hglint:hotpath
func (c *Container) Insert(v int32, s uint8, key int64) {
	if c.gen[v] == c.cur {
		panic("gain: double insert")
	}
	c.gen[v] = c.cur
	c.key[v] = key
	c.side[v] = s
	c.link(v, s, c.clampIdx(key))
	c.size[s]++
}

// Remove unfiles v. v must be in the container.
//
//hglint:hotpath
func (c *Container) Remove(v int32) {
	if c.gen[v] != c.cur {
		panic("gain: remove of absent vertex")
	}
	s := c.side[v]
	c.unlink(v, s, c.clampIdx(c.key[v]))
	c.gen[v] = c.cur - 1
	c.size[s]--
	// maxIdx is lazily repaired in Head.
}

// Update changes v's key by delta, relinking it so its position within the
// target bucket follows the insertion order. Calling Update with delta == 0
// is meaningful: under the paper's "AllDeltaGain" policy a zero-delta update
// still reinserts the vertex and thereby shifts its position within the same
// bucket. The relink is fused — membership, side and size bookkeeping are
// untouched — which is what makes the delta-gain churn of an FM pass cheap.
//
//hglint:hotpath
func (c *Container) Update(v int32, delta int64) {
	if c.gen[v] != c.cur {
		panic("gain: remove of absent vertex")
	}
	s := c.side[v]
	oldIdx := c.clampIdx(c.key[v])
	k := c.key[v] + delta
	c.key[v] = k
	c.unlink(v, s, oldIdx)
	c.link(v, s, c.clampIdx(k))
}

// ApplyDelta is the fused per-pin form of Contains + side dispatch + Update
// for the FM neighbor sweep: when moving a vertex off side from, every
// neighbor pin of an affected net receives one of two per-net deltas
// depending on which side it sits on. If y is absent (locked, fixed or never
// inserted) nothing happens and false is returned. Otherwise the delta
// matching y's stored side is applied — dFrom when y sits on from, dTo
// otherwise — and true is returned so the caller can charge its work
// counter. A zero chosen delta relinks only when zeroReinsert is set (the
// AllDeltaGain churn policy); the relink is observably identical to
// Update(y, 0). Using the container's own side record is sound because a
// member's side cannot change while it is filed: movers are removed before
// their neighbors are updated.
//
//hglint:hotpath
func (c *Container) ApplyDelta(y int32, from uint8, dFrom, dTo int64, zeroReinsert bool) bool {
	if c.gen[y] != c.cur {
		return false
	}
	s := c.side[y]
	delta := dTo
	if s == from {
		delta = dFrom
	}
	if delta == 0 && !zeroReinsert {
		return true
	}
	oldIdx := c.clampIdx(c.key[y])
	k := c.key[y] + delta
	c.key[y] = k
	c.unlink(y, s, oldIdx)
	c.link(y, s, c.clampIdx(k))
	return true
}

// ApplyDeltaPins applies ApplyDelta to every pin of a net except the mover
// and returns how many pins were present (the engine's work-counter charge).
// Batching the whole pin list into one call keeps the container's arrays hot
// in registers across the inner loop of the FM neighbor sweep — the single
// hottest loop in the library — instead of re-establishing them per pin.
//
//hglint:hotpath
func (c *Container) ApplyDeltaPins(pins []int32, mover int32, from uint8, dFrom, dTo int64, zeroReinsert bool) int {
	visited := 0
	gen, cur := c.gen, c.cur
	for _, y := range pins {
		if y == mover || gen[y] != cur {
			continue
		}
		visited++
		s := c.side[y]
		delta := dTo
		if s == from {
			delta = dFrom
		}
		if delta == 0 && !zeroReinsert {
			continue
		}
		oldIdx := c.clampIdx(c.key[y])
		k := c.key[y] + delta
		c.key[y] = k
		c.unlink(y, s, oldIdx)
		c.link(y, s, c.clampIdx(k))
	}
	return visited
}

// Head returns the first vertex of the highest non-empty bucket for side s.
// ok is false when side s is empty. This is the only element FM selection
// examines ("partitioners typically look at only the first move in a
// bucket") — if the returned move is illegal, the engine skips the side.
//
//hglint:hotpath
func (c *Container) Head(s uint8) (v int32, key int64, ok bool) {
	if c.size[s] == 0 {
		c.maxIdx[s] = -1
		return 0, 0, false
	}
	head := c.head[s]
	for c.maxIdx[s] >= 0 && head[c.maxIdx[s]] == 0 {
		c.maxIdx[s]--
	}
	if c.maxIdx[s] < 0 {
		return 0, 0, false
	}
	v = head[c.maxIdx[s]] - 1
	return v, c.key[v], true
}

// WalkBucket calls fn for each vertex in the bucket containing key on side
// s, in list order, stopping early if fn returns false. Used by the
// "look beyond the first move" ablation (LookPastIllegal).
//
//hglint:hotpath
func (c *Container) WalkBucket(s uint8, key int64, fn func(v int32) bool) {
	idx := c.clampIdx(key)
	for n := c.head[s][idx]; n != 0; n = c.next[n-1] {
		if !fn(n - 1) {
			return
		}
	}
}

// WalkDown calls fn for every vertex on side s in non-increasing key order,
// stopping early if fn returns false.
//
//hglint:hotpath
func (c *Container) WalkDown(s uint8, fn func(v int32, key int64) bool) {
	for idx := c.maxIdx[s]; idx >= 0; idx-- {
		for n := c.head[s][idx]; n != 0; n = c.next[n-1] {
			if !fn(n-1, c.key[n-1]) {
				return
			}
		}
	}
}

// Clear empties the container, retaining its allocations for the next pass.
// Cost is proportional to the touched bucket range, not the vertex count:
// membership dies with one epoch bump, and only bucket slots up to the
// max-gain cursor are zeroed (slots above it are empty by the cursor
// invariant). This is what makes engine/arena reuse across starts free —
// and, because stale per-vertex key/side entries are unreachable once the
// epoch moves on, reuse cannot leak state between starts.
//
//hglint:hotpath
func (c *Container) Clear() {
	for s := 0; s < 2; s++ {
		if c.maxIdx[s] >= 0 {
			clear(c.head[s][:c.maxIdx[s]+1])
			clear(c.tail[s][:c.maxIdx[s]+1])
		}
		c.maxIdx[s] = -1
		c.size[s] = 0
	}
	if c.cur == math.MaxUint32 {
		// Epoch wraparound: restart from a clean slate so ancient stamps can
		// never collide with the new epoch.
		clear(c.gen)
		c.cur = 0
	}
	c.cur++
}

// CheckInvariants verifies the internal linked-list structure; used by
// property-based tests. It returns false if any invariant is violated.
func (c *Container) CheckInvariants() bool { return c.VerifyInvariants() == nil }

// VerifyInvariants is CheckInvariants with a structured error describing the
// first violation found: dangling tails, broken back-links, elements filed in
// the wrong bucket, list cycles and size-counter drift. Debug-mode engine
// runs (core.Config.CheckInvariants) use it to convert silent gain-structure
// corruption into an error the evaluation harness can record.
func (c *Container) VerifyInvariants() error {
	counted := [2]int{}
	for s := uint8(0); s < 2; s++ {
		for idx := 0; idx < c.nbucket; idx++ {
			h := c.head[s][idx]
			if h == 0 {
				if c.tail[s][idx] != 0 {
					return fmt.Errorf("gain: side %d bucket %d has nil head but tail %d", s, idx, c.tail[s][idx]-1)
				}
				continue
			}
			if idx > c.maxIdx[s] {
				return fmt.Errorf("gain: side %d bucket %d non-empty above max-gain cursor %d", s, idx, c.maxIdx[s])
			}
			if c.prev[h-1] != 0 {
				return fmt.Errorf("gain: side %d bucket %d head %d has a predecessor", s, idx, h-1)
			}
			var last int32 = 0
			for n := h; n != 0; n = c.next[n-1] {
				v := n - 1
				if c.gen[v] != c.cur {
					return fmt.Errorf("gain: vertex %d linked but not marked in", v)
				}
				if c.side[v] != s || c.clampIdx(c.key[v]) != idx {
					return fmt.Errorf("gain: vertex %d filed under side %d bucket %d but carries side %d key %d",
						v, s, idx, c.side[v], c.key[v])
				}
				if c.next[v] != 0 && c.prev[c.next[v]-1] != n {
					return fmt.Errorf("gain: back-link of %d does not return to %d", c.next[v]-1, v)
				}
				last = n
				counted[s]++
				if counted[s] > len(c.gen) {
					return fmt.Errorf("gain: cycle detected on side %d", s)
				}
			}
			if c.tail[s][idx] != last {
				return fmt.Errorf("gain: side %d bucket %d tail is %d, list ends at %d", s, idx, c.tail[s][idx]-1, last-1)
			}
		}
	}
	if counted[0] != c.size[0] || counted[1] != c.size[1] {
		return fmt.Errorf("gain: size counters (%d,%d) disagree with linked elements (%d,%d)",
			c.size[0], c.size[1], counted[0], counted[1])
	}
	return nil
}

// HeadsDown calls fn for the head of each non-empty bucket on side s in
// non-increasing key order, stopping early if fn returns false. FM variants
// that skip only the corked bucket (rather than the whole side) use this to
// examine the next bucket's head.
//
//hglint:hotpath
func (c *Container) HeadsDown(s uint8, fn func(v int32, key int64) bool) {
	for idx := c.maxIdx[s]; idx >= 0; idx-- {
		n := c.head[s][idx]
		if n == 0 {
			continue
		}
		if !fn(n-1, c.key[n-1]) {
			return
		}
	}
}
