package gain

import (
	"testing"
	"testing/quick"

	"hgpart/internal/rng"
)

func TestInsertHeadSelect(t *testing.T) {
	c := NewContainer(10, 5, LIFO, nil)
	c.Insert(0, 0, 2)
	c.Insert(1, 0, 4)
	c.Insert(2, 0, -1)
	v, key, ok := c.Head(0)
	if !ok || v != 1 || key != 4 {
		t.Fatalf("Head = (%d,%d,%v), want (1,4,true)", v, key, ok)
	}
	if c.Size(0) != 3 || c.Size(1) != 0 {
		t.Fatalf("sizes %d/%d", c.Size(0), c.Size(1))
	}
}

func TestSidesAreSegregated(t *testing.T) {
	c := NewContainer(10, 5, LIFO, nil)
	c.Insert(0, 0, 1)
	c.Insert(1, 1, 5)
	v, _, ok := c.Head(0)
	if !ok || v != 0 {
		t.Fatal("side 0 head wrong")
	}
	v, key, ok := c.Head(1)
	if !ok || v != 1 || key != 5 {
		t.Fatal("side 1 head wrong")
	}
}

func TestLIFOOrderWithinBucket(t *testing.T) {
	c := NewContainer(10, 5, LIFO, nil)
	c.Insert(0, 0, 3)
	c.Insert(1, 0, 3)
	c.Insert(2, 0, 3)
	v, _, _ := c.Head(0)
	if v != 2 {
		t.Fatalf("LIFO head = %d, want most recent (2)", v)
	}
}

func TestFIFOOrderWithinBucket(t *testing.T) {
	c := NewContainer(10, 5, FIFO, nil)
	c.Insert(0, 0, 3)
	c.Insert(1, 0, 3)
	c.Insert(2, 0, 3)
	v, _, _ := c.Head(0)
	if v != 0 {
		t.Fatalf("FIFO head = %d, want first inserted (0)", v)
	}
}

func TestRandomOrderHeadOrTail(t *testing.T) {
	r := rng.New(1)
	c := NewContainer(100, 5, Random, r)
	for v := int32(0); v < 100; v++ {
		c.Insert(v, 0, 0)
	}
	if !c.CheckInvariants() {
		t.Fatal("invariants broken under Random order")
	}
	// The head should rarely be the very first or very last insert every
	// time; just confirm structure and size.
	if c.Size(0) != 100 {
		t.Fatal("size wrong")
	}
}

func TestRemove(t *testing.T) {
	c := NewContainer(10, 5, LIFO, nil)
	c.Insert(0, 0, 3)
	c.Insert(1, 0, 3)
	c.Insert(2, 0, 3)
	c.Remove(1) // middle of list
	if c.Contains(1) {
		t.Fatal("Contains after Remove")
	}
	v, _, _ := c.Head(0)
	if v != 2 {
		t.Fatalf("head %d", v)
	}
	c.Remove(2) // head
	v, _, _ = c.Head(0)
	if v != 0 {
		t.Fatalf("head %d after removing head", v)
	}
	c.Remove(0) // tail/last
	if _, _, ok := c.Head(0); ok {
		t.Fatal("container should be empty")
	}
	if !c.CheckInvariants() {
		t.Fatal("invariants broken")
	}
}

func TestDoubleInsertPanics(t *testing.T) {
	c := NewContainer(4, 2, LIFO, nil)
	c.Insert(0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	c.Insert(0, 0, 1)
}

func TestRemoveAbsentPanics(t *testing.T) {
	c := NewContainer(4, 2, LIFO, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("remove of absent vertex did not panic")
		}
	}()
	c.Remove(1)
}

func TestUpdateMovesBuckets(t *testing.T) {
	c := NewContainer(10, 5, LIFO, nil)
	c.Insert(0, 0, 1)
	c.Insert(1, 0, 2)
	c.Update(0, 4) // 0 now at key 5
	v, key, _ := c.Head(0)
	if v != 0 || key != 5 {
		t.Fatalf("after update head (%d,%d)", v, key)
	}
	if c.Key(1) != 2 {
		t.Fatal("unrelated key changed")
	}
}

func TestZeroDeltaUpdateShiftsPosition(t *testing.T) {
	// This is the All-delta-gain churn the paper studies: a zero-delta
	// Update reinserts the vertex, moving it to the bucket head under LIFO.
	c := NewContainer(10, 5, LIFO, nil)
	c.Insert(0, 0, 3)
	c.Insert(1, 0, 3) // head is 1
	c.Update(0, 0)    // reinsert 0 at same key
	v, _, _ := c.Head(0)
	if v != 0 {
		t.Fatalf("zero-delta LIFO update should move 0 to head, head=%d", v)
	}
}

func TestKeyClamping(t *testing.T) {
	c := NewContainer(4, 3, LIFO, nil)
	c.Insert(0, 0, 100)  // clamped to +3 bucket
	c.Insert(1, 0, -100) // clamped to -3 bucket
	v, key, ok := c.Head(0)
	if !ok || v != 0 || key != 100 {
		t.Fatalf("clamped head (%d,%d,%v)", v, key, ok)
	}
	if !c.CheckInvariants() {
		t.Fatal("invariants after clamping")
	}
}

func TestWalkDownOrder(t *testing.T) {
	c := NewContainer(10, 5, LIFO, nil)
	c.Insert(0, 0, -2)
	c.Insert(1, 0, 4)
	c.Insert(2, 0, 1)
	var keys []int64
	c.WalkDown(0, func(v int32, key int64) bool {
		keys = append(keys, key)
		return true
	})
	if len(keys) != 3 || keys[0] != 4 || keys[1] != 1 || keys[2] != -2 {
		t.Fatalf("WalkDown keys %v", keys)
	}
}

func TestWalkBucket(t *testing.T) {
	c := NewContainer(10, 5, FIFO, nil)
	c.Insert(0, 0, 2)
	c.Insert(1, 0, 2)
	c.Insert(2, 0, 3)
	var got []int32
	c.WalkBucket(0, 2, func(v int32) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("WalkBucket %v", got)
	}
	// Early stop.
	count := 0
	c.WalkBucket(0, 2, func(v int32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatal("WalkBucket ignored early stop")
	}
}

func TestClearRetainsCapacity(t *testing.T) {
	c := NewContainer(10, 5, LIFO, nil)
	for v := int32(0); v < 10; v++ {
		c.Insert(v, uint8(v%2), int64(v%5))
	}
	c.Clear()
	if c.Size(0) != 0 || c.Size(1) != 0 {
		t.Fatal("Clear left elements")
	}
	if _, _, ok := c.Head(0); ok {
		t.Fatal("Head after Clear")
	}
	c.Insert(3, 0, 2)
	if v, _, ok := c.Head(0); !ok || v != 3 {
		t.Fatal("reuse after Clear broken")
	}
}

// TestRandomOperationSequence drives the container with random operations
// and checks invariants plus agreement with a naive reference model.
func TestRandomOperationSequence(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		const n = 40
		const maxKey = 8
		c := NewContainer(n, maxKey, LIFO, r)
		inSet := map[int32]int64{} // vertex -> key
		sideOf := map[int32]uint8{}

		for op := 0; op < 300; op++ {
			v := int32(r.Intn(n))
			switch r.Intn(3) {
			case 0: // insert
				if _, ok := inSet[v]; !ok {
					key := int64(r.Intn(2*maxKey+1) - maxKey)
					s := uint8(r.Intn(2))
					c.Insert(v, s, key)
					inSet[v] = key
					sideOf[v] = s
				}
			case 1: // remove
				if _, ok := inSet[v]; ok {
					c.Remove(v)
					delete(inSet, v)
					delete(sideOf, v)
				}
			case 2: // update
				if _, ok := inSet[v]; ok {
					delta := int64(r.Intn(5) - 2)
					c.Update(v, delta)
					inSet[v] += delta
				}
			}
		}
		if !c.CheckInvariants() {
			return false
		}
		// Head must return the max clamped key per side.
		for s := uint8(0); s < 2; s++ {
			var want int64 = -1 << 62
			found := false
			for v, key := range inSet {
				if sideOf[v] != s {
					continue
				}
				k := key
				if k > maxKey {
					k = maxKey
				}
				if k < -maxKey {
					k = -maxKey
				}
				if k > want {
					want = k
				}
				found = true
			}
			v, key, ok := c.Head(s)
			if ok != found {
				return false
			}
			if ok {
				k := key
				if k > maxKey {
					k = maxKey
				}
				if k < -maxKey {
					k = -maxKey
				}
				if k != want || sideOf[v] != s {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderString(t *testing.T) {
	if LIFO.String() != "LIFO" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Fatal("Order.String wrong")
	}
}

func TestHeadsDown(t *testing.T) {
	c := NewContainer(10, 5, LIFO, nil)
	c.Insert(0, 0, 4)
	c.Insert(1, 0, 4) // head of bucket 4
	c.Insert(2, 0, 1)
	c.Insert(3, 0, -2)
	var got []int32
	c.HeadsDown(0, func(v int32, key int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("HeadsDown visited %v", got)
	}
	// Early stop.
	n := 0
	c.HeadsDown(0, func(v int32, key int64) bool { n++; return false })
	if n != 1 {
		t.Fatal("HeadsDown ignored early stop")
	}
}
