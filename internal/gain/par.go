// Arena containers for the synchronous-round parallel refiner
// (internal/kwayfm ParEngine). The round algorithm does not use the
// gain-bucket Container at all — there is no global priority order to
// maintain when a whole boundary is evaluated per round — but it needs two
// pieces of reusable, thread-partitioned state:
//
//   - Frontier: the boundary/dirty bookkeeping (per-vertex cut-degree,
//     dirty flags, and the round's active list). Mutated only by the
//     single-threaded committer and the serial round setup; workers read
//     cut-degrees and clear dirty flags for vertices inside their own
//     chunk of the active list, which keeps every slot single-writer
//     within a round.
//   - ProposalTable: one slot per active-list position, written by exactly
//     one worker (the one that owns the chunk covering that position) and
//     read only by the committer after the round barrier. Slot ownership
//     by position is what makes the table race-free without locks and the
//     round's output independent of worker count.
//
// Both follow the Container arena discipline: NewX allocates, Reinit
// rebinds in place reusing capacity, and the per-round operations are
// allocation-free (//hglint:hotpath, enforced by the hotalloc analyzer and
// the hgbench parfm case).
package gain

// Frontier tracks which vertices are on the k-way cut boundary and which
// have stale cached gain decompositions. cutdeg[v] counts v's incident
// nets that span more than one part; v is boundary iff cutdeg[v] > 0.
// The committer adjusts cut-degrees only when a net crosses the
// spanning/non-spanning line (lambda 1<->2), so maintenance is O(pins)
// per crossing net, not per move.
type Frontier struct {
	cutdeg []int32
	dirty  []bool
	active []int32
}

// NewFrontier creates a frontier for n vertices.
func NewFrontier(n int) *Frontier {
	f := &Frontier{}
	f.Reinit(n)
	return f
}

// Reinit rebinds the frontier to n vertices, reusing backing arrays when
// capacity allows. All cut-degrees reset to zero and every vertex starts
// dirty: a fresh Refine must recompute every cache entry once.
func (f *Frontier) Reinit(n int) {
	f.cutdeg = grow32(f.cutdeg, n)
	clear(f.cutdeg)
	if cap(f.dirty) >= n {
		f.dirty = f.dirty[:n]
	} else {
		f.dirty = make([]bool, n)
	}
	for i := range f.dirty {
		f.dirty[i] = true
	}
	if cap(f.active) >= n {
		f.active = f.active[:0]
	} else {
		f.active = make([]int32, 0, n)
	}
}

// AddCutNet records that a net with the given pins started spanning more
// than one part.
//
//hglint:hotpath
func (f *Frontier) AddCutNet(pins []int32) {
	for _, v := range pins {
		f.cutdeg[v]++
	}
}

// DropCutNet records that a net with the given pins stopped spanning more
// than one part.
//
//hglint:hotpath
func (f *Frontier) DropCutNet(pins []int32) {
	for _, v := range pins {
		f.cutdeg[v]--
	}
}

// MarkDirtyPins invalidates the cached decomposition of every pin of a net
// whose pin counts changed in a gain-relevant way.
//
//hglint:hotpath
func (f *Frontier) MarkDirtyPins(pins []int32) {
	for _, v := range pins {
		f.dirty[v] = true
	}
}

// MarkDirty invalidates one vertex's cached decomposition.
//
//hglint:hotpath
func (f *Frontier) MarkDirty(v int32) { f.dirty[v] = true }

// Dirty reports whether v's cached decomposition is stale.
//
//hglint:hotpath
func (f *Frontier) Dirty(v int32) bool { return f.dirty[v] }

// ClearDirty marks v's cached decomposition fresh. During a round, only
// the worker owning v's active-list chunk may call this.
//
//hglint:hotpath
func (f *Frontier) ClearDirty(v int32) { f.dirty[v] = false }

// InBoundary reports whether v touches a net spanning more than one part.
//
//hglint:hotpath
func (f *Frontier) InBoundary(v int32) bool { return f.cutdeg[v] > 0 }

// Rebuild scans the cut-degrees and returns the active list: every
// boundary vertex in ascending ID order. The returned slice aliases the
// frontier's arena and is valid until the next Rebuild or Reinit. The
// ascending order is load-bearing twice over: it fixes the proposal-slot
// numbering workers write to, and it is the global commit order that makes
// conflict resolution independent of thread count.
//
//hglint:hotpath
func (f *Frontier) Rebuild() []int32 {
	f.active = f.active[:0]
	for v, d := range f.cutdeg {
		if d > 0 {
			//hglint:ignore hotalloc arena append: active keeps capacity for all n vertices from Reinit, so growth happens at most once per engine, not per round
			f.active = append(f.active, int32(v))
		}
	}
	return f.active
}

// ProposalTable holds one move proposal per active-list position for one
// round: the chosen target part, the gain computed against the round-start
// snapshot, and whether the evaluator proposed anything at all. Parallel
// arrays rather than a struct slice keep the committer's scan sequential
// per field and the zeroing cost explicit (there is none: every slot in
// [0, len(active)) is written by exactly one worker each round, so no
// clearing between rounds is needed).
type ProposalTable struct {
	target []int32
	gain   []int64
	ok     []bool
}

// NewProposalTable creates a table with capacity for n slots.
func NewProposalTable(n int) *ProposalTable {
	t := &ProposalTable{}
	t.Reinit(n)
	return t
}

// Reinit rebinds the table to hold n slots, reusing capacity when it
// suffices. Slot contents are left undefined; each round defines exactly
// the first len(active) slots before reading them.
func (t *ProposalTable) Reinit(n int) {
	t.target = grow32(t.target, n)
	t.gain = grow64(t.gain, n)
	if cap(t.ok) >= n {
		t.ok = t.ok[:n]
	} else {
		t.ok = make([]bool, n)
	}
}

// Propose records a move proposal in slot i.
//
//hglint:hotpath
func (t *ProposalTable) Propose(i int, target int32, gain int64) {
	t.target[i] = target
	t.gain[i] = gain
	t.ok[i] = true
}

// None records that slot i's vertex has no improving legal move.
//
//hglint:hotpath
func (t *ProposalTable) None(i int) { t.ok[i] = false }

// Get returns slot i's proposal; ok is false when the evaluator declined.
//
//hglint:hotpath
func (t *ProposalTable) Get(i int) (target int32, gain int64, ok bool) {
	return t.target[i], t.gain[i], t.ok[i]
}
