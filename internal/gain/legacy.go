// The seed gain container, frozen verbatim as the differential-testing
// oracle for the optimized Container in gain.go.
//
// DO NOT OPTIMIZE OR OTHERWISE EDIT THIS FILE. Its value is precisely that
// it is the straightforward implementation whose behavior the seed test
// suite and the paper-reproduction experiments were validated against: the
// optimized container must remain observably indistinguishable from it
// (TestLegacyEquivalence), and internal/core's reference FM pass
// (Config.ReferenceImpl) runs on it so cmd/hgbench can report an honest
// baseline-vs-optimized speedup on identical move sequences.
package gain

import (
	"fmt"

	"hgpart/internal/rng"
)

const nilIdx int32 = -1

// LegacyContainer is the seed implementation of the gain-bucket structure:
// boolean membership flags reset in O(vertices), nilIdx-encoded links, and
// Update as a full Remove+Insert.
type LegacyContainer struct {
	offset  int64 // bucket index = key + offset
	nbucket int

	head [2][]int32
	tail [2][]int32

	next, prev []int32
	key        []int64
	side       []uint8
	in         []bool

	maxIdx [2]int // index of highest possibly-non-empty bucket; -1 when empty
	size   [2]int

	order Order
	r     *rng.RNG
}

// NewLegacyContainer creates a legacy container with the same contract as
// NewContainer.
func NewLegacyContainer(numVertices int, maxKey int64, order Order, r *rng.RNG) *LegacyContainer {
	if maxKey < 1 {
		maxKey = 1
	}
	n := int(2*maxKey + 1)
	c := &LegacyContainer{
		offset:  maxKey,
		nbucket: n,
		next:    make([]int32, numVertices),
		prev:    make([]int32, numVertices),
		key:     make([]int64, numVertices),
		side:    make([]uint8, numVertices),
		in:      make([]bool, numVertices),
		order:   order,
		r:       r,
	}
	for s := 0; s < 2; s++ {
		c.head[s] = make([]int32, n)
		c.tail[s] = make([]int32, n)
		for i := range c.head[s] {
			c.head[s][i] = nilIdx
			c.tail[s][i] = nilIdx
		}
		c.maxIdx[s] = -1
	}
	return c
}

func (c *LegacyContainer) clampIdx(key int64) int {
	i := key + c.offset
	if i < 0 {
		i = 0
	}
	if i >= int64(c.nbucket) {
		i = int64(c.nbucket) - 1
	}
	return int(i)
}

// Contains reports whether v is currently in the container.
func (c *LegacyContainer) Contains(v int32) bool { return c.in[v] }

// Key returns v's current key; only meaningful while Contains(v).
func (c *LegacyContainer) Key(v int32) int64 { return c.key[v] }

// SideOf returns the side under which v was inserted.
func (c *LegacyContainer) SideOf(v int32) uint8 { return c.side[v] }

// Size returns the number of elements filed under side s.
func (c *LegacyContainer) Size(s uint8) int { return c.size[s] }

// Insert files v under side s with the given key. v must not already be in
// the container.
func (c *LegacyContainer) Insert(v int32, s uint8, key int64) {
	if c.in[v] {
		panic("gain: double insert")
	}
	c.in[v] = true
	c.key[v] = key
	c.side[v] = s
	idx := c.clampIdx(key)

	atHead := true
	switch c.order {
	case FIFO:
		atHead = false
	case Random:
		atHead = c.r.Bool()
	}
	h, t := c.head[s][idx], c.tail[s][idx]
	if h == nilIdx {
		c.head[s][idx], c.tail[s][idx] = v, v
		c.next[v], c.prev[v] = nilIdx, nilIdx
	} else if atHead {
		c.next[v] = h
		c.prev[v] = nilIdx
		c.prev[h] = v
		c.head[s][idx] = v
	} else {
		c.prev[v] = t
		c.next[v] = nilIdx
		c.next[t] = v
		c.tail[s][idx] = v
	}
	if idx > c.maxIdx[s] {
		c.maxIdx[s] = idx
	}
	c.size[s]++
}

// Remove unfiles v. v must be in the container.
func (c *LegacyContainer) Remove(v int32) {
	if !c.in[v] {
		panic("gain: remove of absent vertex")
	}
	s := c.side[v]
	idx := c.clampIdx(c.key[v])
	if c.prev[v] != nilIdx {
		c.next[c.prev[v]] = c.next[v]
	} else {
		c.head[s][idx] = c.next[v]
	}
	if c.next[v] != nilIdx {
		c.prev[c.next[v]] = c.prev[v]
	} else {
		c.tail[s][idx] = c.prev[v]
	}
	c.in[v] = false
	c.size[s]--
	// maxIdx is lazily repaired in Head.
}

// Update changes v's key by delta, removing and reinserting it so its
// position within the target bucket follows the insertion order.
func (c *LegacyContainer) Update(v int32, delta int64) {
	s := c.side[v]
	k := c.key[v] + delta
	c.Remove(v)
	c.Insert(v, s, k)
}

// Head returns the first vertex of the highest non-empty bucket for side s.
func (c *LegacyContainer) Head(s uint8) (v int32, key int64, ok bool) {
	if c.size[s] == 0 {
		c.maxIdx[s] = -1
		return 0, 0, false
	}
	for c.maxIdx[s] >= 0 && c.head[s][c.maxIdx[s]] == nilIdx {
		c.maxIdx[s]--
	}
	if c.maxIdx[s] < 0 {
		return 0, 0, false
	}
	v = c.head[s][c.maxIdx[s]]
	return v, c.key[v], true
}

// WalkBucket calls fn for each vertex in the bucket containing key on side
// s, in list order, stopping early if fn returns false.
func (c *LegacyContainer) WalkBucket(s uint8, key int64, fn func(v int32) bool) {
	idx := c.clampIdx(key)
	for v := c.head[s][idx]; v != nilIdx; v = c.next[v] {
		if !fn(v) {
			return
		}
	}
}

// WalkDown calls fn for every vertex on side s in non-increasing key order,
// stopping early if fn returns false.
func (c *LegacyContainer) WalkDown(s uint8, fn func(v int32, key int64) bool) {
	for idx := c.maxIdx[s]; idx >= 0; idx-- {
		for v := c.head[s][idx]; v != nilIdx; v = c.next[v] {
			if !fn(v, c.key[v]) {
				return
			}
		}
	}
}

// Clear empties the container, retaining its allocations for the next pass.
func (c *LegacyContainer) Clear() {
	for s := 0; s < 2; s++ {
		for i := 0; i <= c.maxIdx[s]; i++ {
			c.head[s][i] = nilIdx
			c.tail[s][i] = nilIdx
		}
		c.maxIdx[s] = -1
		c.size[s] = 0
	}
	for i := range c.in {
		c.in[i] = false
	}
}

// VerifyInvariants checks the internal linked-list structure, mirroring
// Container.VerifyInvariants.
func (c *LegacyContainer) VerifyInvariants() error {
	counted := [2]int{}
	for s := uint8(0); s < 2; s++ {
		for idx := 0; idx < c.nbucket; idx++ {
			h := c.head[s][idx]
			if h == nilIdx {
				if c.tail[s][idx] != nilIdx {
					return fmt.Errorf("gain: side %d bucket %d has nil head but tail %d", s, idx, c.tail[s][idx])
				}
				continue
			}
			if c.prev[h] != nilIdx {
				return fmt.Errorf("gain: side %d bucket %d head %d has a predecessor", s, idx, h)
			}
			var last int32 = nilIdx
			for v := h; v != nilIdx; v = c.next[v] {
				if !c.in[v] {
					return fmt.Errorf("gain: vertex %d linked but not marked in", v)
				}
				if c.side[v] != s || c.clampIdx(c.key[v]) != idx {
					return fmt.Errorf("gain: vertex %d filed under side %d bucket %d but carries side %d key %d",
						v, s, idx, c.side[v], c.key[v])
				}
				if c.next[v] != nilIdx && c.prev[c.next[v]] != v {
					return fmt.Errorf("gain: back-link of %d does not return to %d", c.next[v], v)
				}
				last = v
				counted[s]++
				if counted[s] > len(c.in) {
					return fmt.Errorf("gain: cycle detected on side %d", s)
				}
			}
			if c.tail[s][idx] != last {
				return fmt.Errorf("gain: side %d bucket %d tail is %d, list ends at %d", s, idx, c.tail[s][idx], last)
			}
		}
	}
	if counted[0] != c.size[0] || counted[1] != c.size[1] {
		return fmt.Errorf("gain: size counters (%d,%d) disagree with linked elements (%d,%d)",
			c.size[0], c.size[1], counted[0], counted[1])
	}
	return nil
}

// HeadsDown calls fn for the head of each non-empty bucket on side s in
// non-increasing key order, stopping early if fn returns false.
func (c *LegacyContainer) HeadsDown(s uint8, fn func(v int32, key int64) bool) {
	for idx := c.maxIdx[s]; idx >= 0; idx-- {
		v := c.head[s][idx]
		if v == nilIdx {
			continue
		}
		if !fn(v, c.key[v]) {
			return
		}
	}
}
