package gain

import "testing"

func TestFrontierBoundaryTracking(t *testing.T) {
	f := NewFrontier(6)
	if got := f.Rebuild(); len(got) != 0 {
		t.Fatalf("fresh frontier has active list %v", got)
	}
	f.AddCutNet([]int32{0, 2, 4})
	f.AddCutNet([]int32{2, 5})
	want := []int32{0, 2, 4, 5}
	got := f.Rebuild()
	if len(got) != len(want) {
		t.Fatalf("active = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("active = %v, want %v", got, want)
		}
	}
	if !f.InBoundary(2) || f.InBoundary(1) {
		t.Fatalf("InBoundary wrong: 2=%v 1=%v", f.InBoundary(2), f.InBoundary(1))
	}
	f.DropCutNet([]int32{2, 5})
	got = f.Rebuild()
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("after drop, active = %v, want [0 2 4]", got)
	}
}

func TestFrontierDirtyLifecycle(t *testing.T) {
	f := NewFrontier(4)
	for v := int32(0); v < 4; v++ {
		if !f.Dirty(v) {
			t.Fatalf("vertex %d not dirty after Reinit", v)
		}
	}
	f.ClearDirty(1)
	if f.Dirty(1) {
		t.Fatal("ClearDirty did not stick")
	}
	f.MarkDirtyPins([]int32{1, 3})
	if !f.Dirty(1) || !f.Dirty(3) {
		t.Fatal("MarkDirtyPins did not stick")
	}
	// Reinit to a smaller size reuses arenas but must reset all state.
	f.AddCutNet([]int32{0, 1})
	f.ClearDirty(0)
	f.Reinit(2)
	if f.InBoundary(0) || f.InBoundary(1) {
		t.Fatal("Reinit leaked cut-degrees")
	}
	if !f.Dirty(0) || !f.Dirty(1) {
		t.Fatal("Reinit must mark everything dirty")
	}
}

func TestProposalTableRoundTrip(t *testing.T) {
	p := NewProposalTable(3)
	p.Propose(0, 2, 17)
	p.None(1)
	p.Propose(2, 1, -4)
	if tgt, g, ok := p.Get(0); !ok || tgt != 2 || g != 17 {
		t.Fatalf("slot 0 = (%d,%d,%v)", tgt, g, ok)
	}
	if _, _, ok := p.Get(1); ok {
		t.Fatal("slot 1 should be empty")
	}
	if tgt, g, ok := p.Get(2); !ok || tgt != 1 || g != -4 {
		t.Fatalf("slot 2 = (%d,%d,%v)", tgt, g, ok)
	}
	// Reinit reuses capacity; slots are then redefined by the next round.
	p.Reinit(2)
	p.None(0)
	p.Propose(1, 0, 9)
	if _, _, ok := p.Get(0); ok {
		t.Fatal("slot 0 should be empty after redefinition")
	}
	if tgt, g, ok := p.Get(1); !ok || tgt != 0 || g != 9 {
		t.Fatalf("slot 1 = (%d,%d,%v)", tgt, g, ok)
	}
}

func TestFrontierSteadyStateAllocs(t *testing.T) {
	f := NewFrontier(512)
	pins := []int32{1, 5, 9, 200}
	f.AddCutNet(pins)
	f.Rebuild() // grow the active arena once
	allocs := testing.AllocsPerRun(20, func() {
		f.MarkDirtyPins(pins)
		f.AddCutNet(pins)
		f.Rebuild()
		f.DropCutNet(pins)
	})
	if allocs != 0 {
		t.Fatalf("%.2f allocs/round, want 0", allocs)
	}
}
