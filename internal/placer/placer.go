// Package placer implements top-down recursive min-cut bisection placement
// of standard-cell netlists — the driving application the paper's §2.1
// identifies for hypergraph partitioning research.
//
// The placer recursively bisects layout regions with the library's
// partitioners, alternating cut directions, and uses terminal propagation
// (Dunlop & Kernighan): a net with pins outside the current region
// contributes a zero-weight vertex fixed to the sub-region nearer those
// external pins. This is why, as the paper observes, "almost all hypergraph
// partitioning instances [in placement] have many vertices fixed in
// partitions" — a property absent from the unfixed benchmark suites.
package placer

import (
	"fmt"
	"math"

	"hgpart/internal/core"
	"hgpart/internal/hypergraph"
	"hgpart/internal/multilevel"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// Config controls the placer.
type Config struct {
	// MaxCellsPerRegion stops recursion once a region holds at most this
	// many cells; remaining cells are spread across the region. Default 16.
	MaxCellsPerRegion int
	// Tolerance is the balance tolerance used for every bisection. The
	// paper notes vertical cutlines can sit almost anywhere (2% is typical)
	// while horizontal cutlines need looser tolerances or snapping; we use
	// one tolerance for both. Default 0.1.
	Tolerance float64
	// DisableML forces flat FM for all regions. By default regions larger
	// than MLThreshold use the multilevel engine; smaller regions always use
	// flat FM (ML setup cost dominates on tiny instances).
	DisableML bool
	// MLThreshold is the region size above which ML is used. Default 2000.
	MLThreshold int
	// Refine is the flat engine configuration. Zero value gets
	// core.StrongConfig(false).
	Refine core.Config
	// Quadrisection splits each region four ways at once (Suaris-Kedem)
	// instead of alternating bisections, with quadrant assignment by
	// external-pin attraction.
	Quadrisection bool
	// Seed drives all randomization.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.MaxCellsPerRegion <= 0 {
		c.MaxCellsPerRegion = 16
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	if c.MLThreshold <= 0 {
		c.MLThreshold = 2000
	}
	if c.Refine == (core.Config{}) {
		c.Refine = core.StrongConfig(false)
	}
	return c
}

// Placement is the result: a coordinate per cell inside the unit square,
// plus bookkeeping counters.
type Placement struct {
	X, Y []float64
	// Bisections is the number of partitioning calls performed.
	Bisections int
	// FixedTerminalInstances counts bisections that carried at least one
	// propagated terminal — in real flows this is nearly all of them.
	FixedTerminalInstances int
}

// HPWL returns the total half-perimeter wirelength of the placement over
// the netlist h (the standard placement quality metric).
func (pl *Placement) HPWL(h *hypergraph.Hypergraph) float64 {
	var total float64
	for e := 0; e < h.NumEdges(); e++ {
		pins := h.Pins(int32(e))
		if len(pins) < 2 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, v := range pins {
			x, y := pl.X[v], pl.Y[v]
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
		total += float64(h.EdgeWeight(int32(e))) * ((maxX - minX) + (maxY - minY))
	}
	return total
}

type region struct {
	x0, y0, x1, y1 float64
	cells          []int32
	vertical       bool // next cut direction: true splits x
}

// Place runs the top-down flow on h and returns cell coordinates in the
// unit square.
func Place(h *hypergraph.Hypergraph, cfg Config) (*Placement, error) {
	cfg = cfg.withDefaults()
	n := h.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("placer: empty netlist")
	}
	pl := &Placement{X: make([]float64, n), Y: make([]float64, n)}
	r := rng.New(cfg.Seed ^ 0x9d_1ace_0001)

	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	queue := []region{{0, 0, 1, 1, all, true}}
	for len(queue) > 0 {
		reg := queue[0]
		queue = queue[1:]
		if len(reg.cells) <= cfg.MaxCellsPerRegion {
			spread(pl, reg, r)
			continue
		}
		if cfg.Quadrisection && len(reg.cells) > 4*cfg.MaxCellsPerRegion {
			quads := quadrisectRegion(h, pl, reg, cfg, r)
			children := quadrantRegions(reg, quads)
			for qi, child := range children {
				// Stamp quadrant centers for later terminal propagation.
				for _, v := range child.cells {
					pl.X[v] = (child.x0 + child.x1) / 2
					pl.Y[v] = (child.y0 + child.y1) / 2
				}
				_ = qi
				queue = append(queue, child)
			}
			pl.Bisections++
			pl.FixedTerminalInstances++ // attraction assignment used terminals
			continue
		}
		left, right := bisectRegion(h, pl, reg, cfg, r)
		midX := (reg.x0 + reg.x1) / 2
		midY := (reg.y0 + reg.y1) / 2
		if reg.vertical {
			queue = append(queue,
				region{reg.x0, reg.y0, midX, reg.y1, left, false},
				region{midX, reg.y0, reg.x1, reg.y1, right, false})
		} else {
			queue = append(queue,
				region{reg.x0, reg.y0, reg.x1, midY, left, true},
				region{reg.x0, midY, reg.x1, reg.y1, right, true})
		}
		pl.Bisections++
		// Record provisional centers so later terminal propagation can see
		// where this region's cells ended up.
		assignCenters(pl, h, reg, left, right)
	}
	return pl, nil
}

// assignCenters stamps child-region centers onto the cells so that nets
// crossing into not-yet-placed regions have usable external coordinates.
func assignCenters(pl *Placement, h *hypergraph.Hypergraph, reg region, left, right []int32) {
	midX := (reg.x0 + reg.x1) / 2
	midY := (reg.y0 + reg.y1) / 2
	var lx, ly, rx, ry float64
	if reg.vertical {
		lx, ly = (reg.x0+midX)/2, (reg.y0+reg.y1)/2
		rx, ry = (midX+reg.x1)/2, (reg.y0+reg.y1)/2
	} else {
		lx, ly = (reg.x0+reg.x1)/2, (reg.y0+midY)/2
		rx, ry = (reg.x0+reg.x1)/2, (midY+reg.y1)/2
	}
	for _, v := range left {
		pl.X[v], pl.Y[v] = lx, ly
	}
	for _, v := range right {
		pl.X[v], pl.Y[v] = rx, ry
	}
}

// spread distributes a leaf region's cells over its area deterministically.
func spread(pl *Placement, reg region, r *rng.RNG) {
	k := len(reg.cells)
	if k == 0 {
		return
	}
	cols := int(math.Ceil(math.Sqrt(float64(k))))
	w := (reg.x1 - reg.x0) / float64(cols)
	rows := (k + cols - 1) / cols
	hgt := (reg.y1 - reg.y0) / float64(rows)
	for i, v := range reg.cells {
		cx := reg.x0 + (float64(i%cols)+0.5)*w
		cy := reg.y0 + (float64(i/cols)+0.5)*hgt
		pl.X[v] = cx
		pl.Y[v] = cy
	}
}

// bisectRegion extracts the sub-hypergraph induced by the region's cells,
// adds propagated terminals, partitions it and splits the cell list.
func bisectRegion(h *hypergraph.Hypergraph, pl *Placement, reg region, cfg Config, r *rng.RNG) (left, right []int32) {
	cells := reg.cells
	local := make(map[int32]int32, len(cells))
	for i, v := range cells {
		local[v] = int32(i)
	}

	b := hypergraph.NewBuilder(len(cells)+2, 64)
	b.Name = "region"
	for _, v := range cells {
		b.AddVertex(h.VertexWeight(v))
	}
	// Two zero-weight terminal vertices, fixed to side 0 and side 1.
	t0 := b.AddVertex(0)
	t1 := b.AddVertex(0)

	midX := (reg.x0 + reg.x1) / 2
	midY := (reg.y0 + reg.y1) / 2
	externalSide := func(v int32) uint8 {
		if reg.vertical {
			if pl.X[v] < midX {
				return 0
			}
			return 1
		}
		if pl.Y[v] < midY {
			return 0
		}
		return 1
	}

	seen := make(map[int32]bool)
	hasTerminals := false
	for _, v := range cells {
		for _, e := range h.IncidentEdges(v) {
			if seen[e] {
				continue
			}
			seen[e] = true
			var pins []int32
			ext := [2]bool{}
			for _, u := range h.Pins(e) {
				if lu, ok := local[u]; ok {
					pins = append(pins, lu)
				} else {
					ext[externalSide(u)] = true
				}
			}
			if len(pins) == 0 {
				continue
			}
			if ext[0] {
				pins = append(pins, t0)
				hasTerminals = true
			}
			if ext[1] {
				pins = append(pins, t1)
				hasTerminals = true
			}
			if len(pins) >= 2 {
				b.AddEdge(h.EdgeWeight(e), pins...)
			}
		}
	}
	sub := b.MustBuild()
	if hasTerminals {
		pl.FixedTerminalInstances++
	}

	bal := partition.NewBalance(sub.TotalVertexWeight(), cfg.Tolerance)
	var p *partition.P
	if !cfg.DisableML && len(cells) > cfg.MLThreshold {
		// The fixed-vertex multilevel path keeps the propagated terminals
		// pinned through coarsening, initial partitioning and refinement.
		ml := multilevel.New(sub, multilevel.Config{Refine: cfg.Refine}, bal)
		fixed := make([]int8, sub.NumVertices())
		for i := range fixed {
			fixed[i] = partition.Free
		}
		fixed[t0], fixed[t1] = 0, 1
		p, _ = ml.PartitionFixed(fixed, r.Split())
	} else {
		p = partition.New(sub)
		p.Fix(t0, 0)
		p.Fix(t1, 1)
		p.RandomBalanced(r.Split(), bal)
		eng := core.NewEngine(sub, cfg.Refine, bal, r.Split())
		eng.Run(p)
	}

	for i, v := range cells {
		if p.Side(int32(i)) == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	// Degenerate guard: never return an empty side.
	if len(left) == 0 || len(right) == 0 {
		half := len(cells) / 2
		return cells[:half], cells[half:]
	}
	return left, right
}
