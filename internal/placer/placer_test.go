package placer

import (
	"testing"

	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/rng"
)

func netlistForPlacement(tb testing.TB, cells int) *hypergraph.Hypergraph {
	tb.Helper()
	h, err := gen.Generate(gen.Spec{
		Name: "place-test", Cells: cells, Nets: cells + cells/8,
		AvgNetSize: 3.3, NumMacros: 2, MaxMacroFrac: 0.02,
		NumGlobalNets: 1, GlobalNetFrac: 0.01, Locality: 2, Seed: 5,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

func TestPlaceCoordinatesInBounds(t *testing.T) {
	h := netlistForPlacement(t, 500)
	pl, err := Place(h, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < h.NumVertices(); v++ {
		x, y := pl.X[v], pl.Y[v]
		if x < 0 || x > 1 || y < 0 || y > 1 {
			t.Fatalf("cell %d at (%f,%f) outside unit square", v, x, y)
		}
	}
	if pl.Bisections == 0 {
		t.Fatal("no bisections performed")
	}
}

func TestPlaceBeatsRandomHPWL(t *testing.T) {
	h := netlistForPlacement(t, 600)
	pl, err := Place(h, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	placed := pl.HPWL(h)

	// Random placement baseline.
	r := rng.New(3)
	rand := &Placement{X: make([]float64, h.NumVertices()), Y: make([]float64, h.NumVertices())}
	for v := range rand.X {
		rand.X[v] = r.Float64()
		rand.Y[v] = r.Float64()
	}
	random := rand.HPWL(h)
	if placed > 0.7*random {
		t.Fatalf("placement HPWL %.1f not clearly better than random %.1f", placed, random)
	}
}

func TestTerminalPropagationHappens(t *testing.T) {
	h := netlistForPlacement(t, 400)
	pl, err := Place(h, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's observation: nearly every partitioning instance in
	// top-down placement carries fixed terminals. The top-level bisection
	// has none; essentially all others should.
	if pl.Bisections >= 4 && pl.FixedTerminalInstances < pl.Bisections/2 {
		t.Fatalf("only %d of %d bisections had terminals",
			pl.FixedTerminalInstances, pl.Bisections)
	}
}

func TestPlaceEmptyNetlist(t *testing.T) {
	b := hypergraph.NewBuilder(0, 0)
	h := b.MustBuild()
	if _, err := Place(h, Config{}); err == nil {
		t.Fatal("empty netlist accepted")
	}
}

func TestPlaceTinyNetlist(t *testing.T) {
	b := hypergraph.NewBuilder(3, 1)
	b.AddVertices(3, 1)
	b.AddEdge(1, 0, 1, 2)
	h := b.MustBuild()
	pl, err := Place(h, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Bisections != 0 {
		t.Fatal("tiny netlist should be a single leaf region")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	h := netlistForPlacement(t, 300)
	a, err := Place(h, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(h, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.X {
		if a.X[v] != b.X[v] || a.Y[v] != b.Y[v] {
			t.Fatalf("placement not deterministic at cell %d", v)
		}
	}
}

func TestHPWLZeroForCoincident(t *testing.T) {
	b := hypergraph.NewBuilder(3, 1)
	b.AddVertices(3, 1)
	b.AddEdge(2, 0, 1, 2)
	h := b.MustBuild()
	pl := &Placement{X: []float64{0.5, 0.5, 0.5}, Y: []float64{0.5, 0.5, 0.5}}
	if pl.HPWL(h) != 0 {
		t.Fatal("coincident pins should have zero HPWL")
	}
	pl2 := &Placement{X: []float64{0, 1, 0}, Y: []float64{0, 0, 1}}
	// bbox 1x1, weight 2 -> HPWL 4.
	if got := pl2.HPWL(h); got != 4 {
		t.Fatalf("HPWL %v, want 4", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxCellsPerRegion != 16 || c.Tolerance != 0.1 || c.MLThreshold != 2000 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestQuadrisectionPlacement(t *testing.T) {
	h := netlistForPlacement(t, 600)
	pl, err := Place(h, Config{Seed: 8, Quadrisection: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < h.NumVertices(); v++ {
		if pl.X[v] < 0 || pl.X[v] > 1 || pl.Y[v] < 0 || pl.Y[v] > 1 {
			t.Fatalf("cell %d outside unit square", v)
		}
	}
	// Quality: same ballpark as bisection placement, far better than random.
	bis, err := Place(h, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	q, b := pl.HPWL(h), bis.HPWL(h)
	if q > 1.6*b {
		t.Fatalf("quadrisection HPWL %.1f much worse than bisection %.1f", q, b)
	}
}

func TestQuadrisectionDeterministic(t *testing.T) {
	h := netlistForPlacement(t, 300)
	a, err := Place(h, Config{Seed: 9, Quadrisection: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(h, Config{Seed: 9, Quadrisection: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.X {
		if a.X[v] != b.X[v] || a.Y[v] != b.Y[v] {
			t.Fatalf("quadrisection not deterministic at %d", v)
		}
	}
}

func TestPermutations4(t *testing.T) {
	perms := permutations4()
	if len(perms) != 24 {
		t.Fatalf("%d permutations", len(perms))
	}
	seen := map[[4]int]bool{}
	for _, p := range perms {
		if seen[p] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[p] = true
		var used [4]bool
		for _, x := range p {
			if x < 0 || x > 3 || used[x] {
				t.Fatalf("invalid permutation %v", p)
			}
			used[x] = true
		}
	}
}
