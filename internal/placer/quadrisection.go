package placer

import (
	"math"

	"hgpart/internal/hypergraph"
	"hgpart/internal/kway"
	"hgpart/internal/rng"
)

// Quadrisection (Suaris & Kedem, ICCAD'87 — reference [35] of the paper)
// splits a region into four quadrants with one joint 4-way partitioning
// instead of two sequential bisections, avoiding the horizontal/vertical
// ordering bias. This implementation partitions the region's induced
// sub-hypergraph 4 ways (recursive bisection + direct k-way refinement),
// then assigns the four parts to the four quadrants by exhaustively
// choosing, among the 24 permutations, the one minimizing attraction cost
// to external pins — the terminal-propagation step of the quadrisection
// flow.

// quadrisectRegion splits reg's cells into four child quadrant cell lists
// (ordered: SW, SE, NW, NE).
func quadrisectRegion(h *hypergraph.Hypergraph, pl *Placement, reg region, cfg Config, r *rng.RNG) [4][]int32 {
	cells := reg.cells
	local := make(map[int32]int32, len(cells))
	for i, v := range cells {
		local[v] = int32(i)
	}

	// Induced sub-hypergraph (external pins recorded separately for the
	// quadrant-assignment step).
	b := hypergraph.NewBuilder(len(cells), len(cells))
	b.Name = "quad-region"
	for _, v := range cells {
		b.AddVertex(h.VertexWeight(v))
	}
	type extNet struct {
		edge int32
		pins []int32 // local pins
	}
	var externals []extNet
	seen := make(map[int32]bool)
	for _, v := range cells {
		for _, e := range h.IncidentEdges(v) {
			if seen[e] {
				continue
			}
			seen[e] = true
			var pins []int32
			hasExternal := false
			for _, u := range h.Pins(e) {
				if lu, ok := local[u]; ok {
					pins = append(pins, lu)
				} else {
					hasExternal = true
				}
			}
			if len(pins) >= 2 {
				b.AddEdge(h.EdgeWeight(e), pins...)
			}
			if hasExternal && len(pins) >= 1 {
				externals = append(externals, extNet{edge: e, pins: pins})
			}
		}
	}
	sub := b.MustBuild()

	res, err := kway.Partition(sub, 4, kway.Config{
		Tolerance:    cfg.Tolerance,
		Refine:       cfg.Refine,
		DisableML:    cfg.DisableML,
		MLThreshold:  cfg.MLThreshold,
		DirectRefine: true,
	}, r.Split())
	if err != nil {
		// Fall back to a size split (degenerate regions).
		var out [4][]int32
		q := (len(cells) + 3) / 4
		for i, v := range cells {
			out[min4(i/q)] = append(out[min4(i/q)], v)
		}
		return out
	}

	// Quadrant centers (SW, SE, NW, NE).
	midX := (reg.x0 + reg.x1) / 2
	midY := (reg.y0 + reg.y1) / 2
	qx := [4]float64{(reg.x0 + midX) / 2, (midX + reg.x1) / 2, (reg.x0 + midX) / 2, (midX + reg.x1) / 2}
	qy := [4]float64{(reg.y0 + midY) / 2, (reg.y0 + midY) / 2, (midY + reg.y1) / 2, (midY + reg.y1) / 2}

	// attraction[p][q]: cost of placing part p in quadrant q = summed
	// distance from q's center to each external net's external centroid,
	// for nets touching part p.
	var attraction [4][4]float64
	for _, en := range externals {
		// Which parts does this net touch inside the region?
		var touches [4]bool
		for _, lp := range en.pins {
			touches[res.Parts[lp]] = true
		}
		// Centroid of the net's external pins (already-placed estimates).
		var cx, cy float64
		cnt := 0
		for _, u := range h.Pins(en.edge) {
			if _, ok := local[u]; !ok {
				cx += pl.X[u]
				cy += pl.Y[u]
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		cx /= float64(cnt)
		cy /= float64(cnt)
		w := float64(h.EdgeWeight(en.edge))
		for p := 0; p < 4; p++ {
			if !touches[p] {
				continue
			}
			for q := 0; q < 4; q++ {
				attraction[p][q] += w * (math.Abs(qx[q]-cx) + math.Abs(qy[q]-cy))
			}
		}
	}

	// Best of the 24 part->quadrant permutations.
	perms := permutations4()
	bestPerm := perms[0]
	bestCost := math.Inf(1)
	for _, perm := range perms {
		var cost float64
		for p := 0; p < 4; p++ {
			cost += attraction[p][perm[p]]
		}
		if cost < bestCost {
			bestCost = cost
			bestPerm = perm
		}
	}

	var out [4][]int32
	for i, v := range cells {
		out[bestPerm[res.Parts[i]]] = append(out[bestPerm[res.Parts[i]]], v)
	}
	return out
}

func min4(i int) int {
	if i > 3 {
		return 3
	}
	return i
}

// permutations4 enumerates the 24 permutations of {0,1,2,3}.
func permutations4() [][4]int {
	var out [][4]int
	var rec func(cur []int, used [4]bool)
	rec = func(cur []int, used [4]bool) {
		if len(cur) == 4 {
			var p [4]int
			copy(p[:], cur)
			out = append(out, p)
			return
		}
		for i := 0; i < 4; i++ {
			if !used[i] {
				used[i] = true
				rec(append(cur, i), used)
				used[i] = false
			}
		}
	}
	rec(nil, [4]bool{})
	return out
}

// quadrantRegions returns the four child regions of reg (SW, SE, NW, NE),
// each set to start with a vertical cut.
func quadrantRegions(reg region, quads [4][]int32) []region {
	midX := (reg.x0 + reg.x1) / 2
	midY := (reg.y0 + reg.y1) / 2
	return []region{
		{reg.x0, reg.y0, midX, midY, quads[0], true},
		{midX, reg.y0, reg.x1, midY, quads[1], true},
		{reg.x0, midY, midX, reg.y1, quads[2], true},
		{midX, midY, reg.x1, reg.y1, quads[3], true},
	}
}
