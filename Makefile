GO ?= go

.PHONY: all build test race vet lint lint-strict fuzz bench bench-smoke bench-go parfm-diff serve-smoke chaos-smoke cluster-smoke netchaos-smoke portfolio-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Determinism, reproducibility, and concurrency-safety analyzers
# (internal/lint via cmd/hglint): banned randomness/wall-clock in algorithm
# packages, result-affecting map iteration, RNG sharing across goroutines,
# panic boundary policy, cancellable experiment sweeps, guarded-field lock
# discipline, goroutine lifecycle proofs, and hot-path allocation freedom.
# Fails on any unannotated finding.
lint: vet
	$(GO) run ./cmd/hglint ./...

# Everything lint checks, plus the stale-suppression audit: an
# //hglint:ignore directive that no longer suppresses any finding is itself
# an error, so suppressions cannot outlive their bug (DESIGN.md §13).
lint-strict: vet
	$(GO) run ./cmd/hglint -strict ./...

# Race-enabled run of the concurrency-sensitive packages plus the full suite.
race:
	$(GO) test -race ./...

# Short fuzz pass over every netlist parser (regression corpora always run
# as part of plain `make test`; this explores beyond them).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseHGR -fuzztime=10s ./internal/netlist
	$(GO) test -run=^$$ -fuzz=FuzzParsePaToH -fuzztime=10s ./internal/netlist
	$(GO) test -run=^$$ -fuzz=FuzzParseNetD -fuzztime=10s ./internal/netlist
	$(GO) test -run=^$$ -fuzz=FuzzParseBookshelf -fuzztime=10s ./internal/netlist
	$(GO) test -run=^$$ -fuzz=FuzzParseSpec -fuzztime=10s ./internal/chaos

# Reproducible micro-suite benchmark (cmd/hgbench): fixed seeds, warmup,
# median-of-k ns/move and allocs/move for the frozen-reference vs optimized
# engine pairs, plus the parallel-refiner thread-scaling case. Refreshes the
# committed baseline.
bench:
	$(GO) run ./cmd/hgbench -out BENCH_pr8.json

# CI gate: a quick run that must show zero steady-state allocations on the
# zero-alloc cases (including the parallel refiner), parallel speedup
# targets met (full targets arm only on hosts with enough CPUs), and no
# case more than 10% slower (ns/move, normalized by the co-measured frozen
# reference to cancel machine-state drift) than the committed BENCH_pr8.json
# baseline.
bench-smoke:
	$(GO) run ./cmd/hgbench -reps 5 -warmup 1 -assert-zero-allocs -assert-speedups -check BENCH_pr8.json -tolerance 0.10

# Plain go-test benchmarks across all packages.
bench-go:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Parallel-FM differential suite under the race detector: the round pool
# and frontier containers, and every ParEngine test — byte-identity against
# the frozen ParRefineReference oracle at threads 1, 2, 4 and 8, the
# per-round invariant properties, mid-run cancellation legality, and the
# steady-state zero-allocation checks.
parfm-diff:
	$(GO) test -race -count=1 -run 'TestRoundPool|TestFrontier|TestProposalTable|TestPar' ./internal/core ./internal/gain ./internal/kwayfm

# End-to-end daemon smoke: build the real hgserved binary, boot it on an
# ephemeral port, verify liveness, a computed-then-cached byte-identical
# request pair, the metrics counters, and a clean SIGTERM graceful drain.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 ./cmd/hgserved

# Crash-consistency smoke (cmd/hgchaos): build hgserved, run one seeded
# kill/restart cycle per scenario (SIGKILL mid-record-write, mid-fsync,
# mid-drain), and assert the recovered reports are byte-identical to an
# uninterrupted run. Bounded well under 60s.
chaos-smoke:
	$(GO) test -run TestChaosSmoke -count=1 -timeout 120s ./cmd/hgchaos

# Cluster smoke (cmd/hgchaos cluster scenarios, DESIGN.md §12): build
# hgserved with -race, boot coordinator + worker fleets, and assert
# byte-identical reports across 1/2/3-worker topologies, a worker SIGKILL
# mid-job with journal-backed failover to a survivor, a coordinator SIGKILL
# with restart, and full degradation to local compute against a dead fleet.
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count=1 -timeout 360s ./cmd/hgchaos

# Network chaos smoke (cmd/hgchaos net scenarios, DESIGN.md §16): build
# hgserved with -race and arm its -net-chaos transport — a blackholed worker
# trips its circuit breaker and the job reroutes, a slow peer demotes to a
# local compute, bit-corrupted dispatch/peer responses are caught by the
# sha256 envelope and never poison a cache, and a flapping worker's breaker
# recovers closed. All four scenarios must reproduce the baseline bytes.
netchaos-smoke:
	$(GO) test -run TestNetChaosSmoke -count=1 -timeout 360s ./cmd/hgchaos

# Portfolio smoke (DESIGN.md §15): under the race detector, race the arm
# portfolio on two gen profiles with byte-identical results across repeated
# runs and a cold/warm/reopened outcome store (internal/portfolio), the
# mode=portfolio service path with its advisory-store restart proof
# (internal/service), and the hgchaos portfolio scenario (restart +
# 1/2/3-worker cluster byte-identity); then run the hgbench quality gate —
# portfolio never worse than the fixed default on half the suite, racing
# overhead bounded.
portfolio-smoke:
	$(GO) test -race -count=1 -timeout 360s -run 'TestPortfolio' ./internal/portfolio ./internal/service ./cmd/hgchaos
	$(GO) run ./cmd/hgbench -portfolio-gate

# What CI runs: build, static checks (vet + hglint with the stale-suppression
# audit), the full test suite under the race detector, the parallel-FM
# differential suite, the benchmark smoke gate, the daemon smoke, the
# crash-consistency, cluster kill/restart and network chaos smokes, and the
# portfolio determinism/quality smoke.
ci: build lint-strict race parfm-diff bench-smoke serve-smoke chaos-smoke cluster-smoke netchaos-smoke portfolio-smoke
