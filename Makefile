GO ?= go

.PHONY: all build test race vet lint fuzz bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Determinism and reproducibility analyzers (internal/lint via cmd/hglint):
# banned randomness/wall-clock in algorithm packages, result-affecting map
# iteration, RNG sharing across goroutines, panic boundary policy, and
# cancellable experiment sweeps. Fails on any unannotated finding.
lint: vet
	$(GO) run ./cmd/hglint ./...

# Race-enabled run of the concurrency-sensitive packages plus the full suite.
race:
	$(GO) test -race ./...

# Short fuzz pass over every netlist parser (regression corpora always run
# as part of plain `make test`; this explores beyond them).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseHGR -fuzztime=10s ./internal/netlist
	$(GO) test -run=^$$ -fuzz=FuzzParsePaToH -fuzztime=10s ./internal/netlist
	$(GO) test -run=^$$ -fuzz=FuzzParseNetD -fuzztime=10s ./internal/netlist
	$(GO) test -run=^$$ -fuzz=FuzzParseBookshelf -fuzztime=10s ./internal/netlist

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# What CI runs: build, static checks (vet + hglint), and the full test suite
# under the race detector.
ci: build lint race
