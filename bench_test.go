// Benchmark harness: one benchmark per table and figure of the paper, plus
// ablation benches for the design choices DESIGN.md calls out.
//
// Table benches measure the unit of work each table is built from (one
// single start, or one best-of-k configuration) on a reduced-scale
// instance, and report the achieved cut as a custom metric so quality and
// runtime appear side by side — exactly the (cost, runtime) pairing the
// paper argues benchmarks must report. Full-size tables are produced by
// cmd/hgeval; EXPERIMENTS.md records paper-vs-measured values.
package hgpart

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"hgpart/internal/core"
	"hgpart/internal/eval"
	"hgpart/internal/exact"
	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/kway"
	"hgpart/internal/kwayfm"
	"hgpart/internal/multilevel"
	"hgpart/internal/netlist"
	"hgpart/internal/partition"
	"hgpart/internal/placer"
	"hgpart/internal/rng"
	"hgpart/internal/spectral"
)

// benchScale keeps a single benchmark iteration in the low-millisecond
// range on one core.
const benchScale = 0.08

var (
	benchOnce sync.Once
	benchIBM  map[int]*hypergraph.Hypergraph
)

func benchInstance(b *testing.B, i int) *hypergraph.Hypergraph {
	b.Helper()
	benchOnce.Do(func() {
		benchIBM = map[int]*hypergraph.Hypergraph{}
		for _, id := range []int{1, 2, 3, 14} {
			benchIBM[id] = gen.MustGenerate(gen.Scaled(gen.MustIBMProfile(id), benchScale))
		}
	})
	return benchIBM[i]
}

// reportCut attaches the average achieved cut to the benchmark output.
func reportCut(b *testing.B, totalCut int64) {
	b.Helper()
	if b.N > 0 {
		b.ReportMetric(float64(totalCut)/float64(b.N), "cut/op")
	}
}

// benchFlat measures one single start of a flat configuration per iteration.
func benchFlat(b *testing.B, h *hypergraph.Hypergraph, cfg core.Config, tol float64) {
	b.Helper()
	bal := partition.NewBalance(h.TotalVertexWeight(), tol)
	r := rng.New(2027)
	eng := core.NewEngine(h, cfg, bal, r.Split())
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := partition.New(h)
		p.RandomBalanced(r.Split(), bal)
		total += eng.Run(p).Cut
	}
	reportCut(b, total)
}

// benchML measures one multilevel start per iteration.
func benchML(b *testing.B, h *hypergraph.Hypergraph, cfg multilevel.Config, tol float64) {
	b.Helper()
	bal := partition.NewBalance(h.TotalVertexWeight(), tol)
	ml := multilevel.New(h, cfg, bal)
	r := rng.New(2028)
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := ml.Partition(r.Split())
		total += st.Cut
	}
	reportCut(b, total)
}

// BenchmarkTable1 exercises the Table 1 grid: the four engines under the
// best and worst implicit-decision combinations (AllDeltaGain/Part0 vs
// Nonzero/Toward) on the ibm01-like instance at 2% tolerance.
func BenchmarkTable1(b *testing.B) {
	h := benchInstance(b, 1)
	combos := []struct {
		name   string
		update core.UpdatePolicy
		bias   core.Bias
	}{
		{"AllDGain-Part0", core.AllDeltaGain, core.Part0},
		{"Nonzero-Toward", core.NonzeroOnly, core.Toward},
	}
	for _, clip := range []bool{false, true} {
		engine := "LIFO"
		if clip {
			engine = "CLIP"
		}
		for _, cb := range combos {
			cfg := core.Config{
				CLIP: clip, Update: cb.update, Bias: cb.bias,
				Insertion: core.LIFO, CorkGuard: clip,
			}
			b.Run(fmt.Sprintf("Flat-%s/%s", engine, cb.name), func(b *testing.B) {
				benchFlat(b, h, cfg, 0.02)
			})
			b.Run(fmt.Sprintf("ML-%s/%s", engine, cb.name), func(b *testing.B) {
				benchML(b, h, multilevel.Config{Refine: cfg}, 0.02)
			})
		}
	}
}

// BenchmarkTable2 contrasts the naive ("Reported") and tuned ("Our") LIFO
// FM at both tolerances of Table 2.
func BenchmarkTable2(b *testing.B) {
	h := benchInstance(b, 1)
	for _, tol := range []float64{0.02, 0.10} {
		b.Run(fmt.Sprintf("Reported-LIFO/tol=%g", tol), func(b *testing.B) {
			benchFlat(b, h, core.NaiveConfig(false), tol)
		})
		b.Run(fmt.Sprintf("Our-LIFO/tol=%g", tol), func(b *testing.B) {
			benchFlat(b, h, core.StrongConfig(false), tol)
		})
	}
}

// BenchmarkTable3 contrasts corking-prone and corking-guarded CLIP (Table 3)
// on the macro-heavy ibm02-like instance where corking bites hardest.
func BenchmarkTable3(b *testing.B) {
	h := benchInstance(b, 2)
	for _, tol := range []float64{0.02, 0.10} {
		b.Run(fmt.Sprintf("Reported-CLIP/tol=%g", tol), func(b *testing.B) {
			benchFlat(b, h, core.NaiveConfig(true), tol)
		})
		b.Run(fmt.Sprintf("Our-CLIP/tol=%g", tol), func(b *testing.B) {
			benchFlat(b, h, core.StrongConfig(true), tol)
		})
	}
}

// benchBestOfK measures one full best-of-k ML configuration (with V-cycle
// polish) per iteration — the unit of Tables 4 and 5.
func benchBestOfK(b *testing.B, h *hypergraph.Hypergraph, k int, tol float64) {
	b.Helper()
	bal := partition.NewBalance(h.TotalVertexWeight(), tol)
	heur := eval.NewML("ML", h, multilevel.Config{Refine: core.StrongConfig(false)}, bal, 1)
	r := rng.New(2029)
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, _, _ := eval.BestOfK(heur, k, r.Split())
		total += best.Cut
	}
	reportCut(b, total)
}

// BenchmarkTable4 measures the Table 4 configurations (2% tolerance) at
// 1, 4 and 16 starts on small and mid-size instances.
func BenchmarkTable4(b *testing.B) {
	for _, inst := range []int{1, 14} {
		h := benchInstance(b, inst)
		for _, k := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/starts=%d", h.Name, k), func(b *testing.B) {
				benchBestOfK(b, h, k, 0.02)
			})
		}
	}
}

// BenchmarkTable5 is Table 4 at the 10% tolerance of Table 5.
func BenchmarkTable5(b *testing.B) {
	h := benchInstance(b, 1)
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("%s/starts=%d", h.Name, k), func(b *testing.B) {
			benchBestOfK(b, h, k, 0.10)
		})
	}
}

// figureSamples produces the single-start sample sets underlying the
// methodology figures.
func figureSamples(b *testing.B, h *hypergraph.Hypergraph) map[string][]eval.Outcome {
	b.Helper()
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
	r := rng.New(2030)
	out := map[string][]eval.Outcome{}
	for _, heur := range []eval.Heuristic{
		eval.NewFlat("flat-LIFO", h, core.StrongConfig(false), bal, r.Split()),
		eval.NewFlat("flat-CLIP", h, core.StrongConfig(true), bal, r.Split()),
		eval.NewML("ML", h, multilevel.Config{Refine: core.StrongConfig(false)}, bal, 0),
	} {
		samples, _ := eval.Multistart(heur, 12, r.Split())
		out[heur.Name()] = samples
	}
	return out
}

// BenchmarkFigureBSF measures best-so-far curve construction (Figure A).
func BenchmarkFigureBSF(b *testing.B) {
	h := benchInstance(b, 1)
	samples := figureSamples(b, h)
	budgets := []float64{0.001, 0.01, 0.1, 1, 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range samples {
			eval.BSFCurve(s, budgets, true)
		}
	}
}

// BenchmarkFigurePareto measures non-dominated frontier extraction
// (Figure B) over the full configuration point set.
func BenchmarkFigurePareto(b *testing.B) {
	h := benchInstance(b, 1)
	samples := figureSamples(b, h)
	var points []eval.PerfPoint
	for name, s := range samples {
		cuts := make([]float64, len(s))
		var mean float64
		for i, o := range s {
			cuts[i] = float64(o.Cut)
			mean += o.NormalizedSeconds()
		}
		mean /= float64(len(s))
		sortFloats(cuts)
		for _, k := range []int{1, 2, 4, 8, 16} {
			points = append(points, eval.PerfPoint{
				Label:   fmt.Sprintf("%s x%d", name, k),
				Cost:    eval.ExpectedBestOfK(cuts, k),
				Seconds: mean * float64(k),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.ParetoFrontier(points)
	}
}

// BenchmarkFigureRanking measures ranking-diagram construction (Figure C).
func BenchmarkFigureRanking(b *testing.B) {
	h := benchInstance(b, 1)
	samples := figureSamples(b, h)
	bySize := map[int]map[string][]eval.Outcome{h.NumVertices(): samples}
	budgets := []float64{0.001, 0.01, 0.1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.RankingDiagram(bySize, budgets, true)
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

// BenchmarkAblationInsertion reproduces the Hagen-Huang-Kahng comparison:
// LIFO vs FIFO vs Random gain-bucket insertion.
func BenchmarkAblationInsertion(b *testing.B) {
	h := benchInstance(b, 1)
	for _, ins := range []core.InsertionOrder{core.LIFO, core.FIFO, core.RandomOrder} {
		cfg := core.StrongConfig(false)
		cfg.Insertion = ins
		b.Run(ins.String(), func(b *testing.B) {
			benchFlat(b, h, cfg, 0.02)
		})
	}
}

// BenchmarkAblationCorkGuard toggles the corking guard for plain FM and
// CLIP on the macro-heavy instance.
func BenchmarkAblationCorkGuard(b *testing.B) {
	h := benchInstance(b, 2)
	for _, clip := range []bool{false, true} {
		for _, guard := range []bool{false, true} {
			cfg := core.StrongConfig(clip)
			cfg.CorkGuard = guard
			name := fmt.Sprintf("clip=%v/guard=%v", clip, guard)
			b.Run(name, func(b *testing.B) {
				benchFlat(b, h, cfg, 0.02)
			})
		}
	}
}

// BenchmarkAblationZeroDelta toggles the zero-delta-gain update policy.
func BenchmarkAblationZeroDelta(b *testing.B) {
	h := benchInstance(b, 1)
	for _, upd := range []core.UpdatePolicy{core.AllDeltaGain, core.NonzeroOnly} {
		cfg := core.StrongConfig(false)
		cfg.Update = upd
		b.Run(upd.String(), func(b *testing.B) {
			benchFlat(b, h, cfg, 0.02)
		})
	}
}

// BenchmarkAblationClusterCap varies the multilevel cluster-weight cap.
func BenchmarkAblationClusterCap(b *testing.B) {
	h := benchInstance(b, 1)
	for _, frac := range []float64{0.01, 0.04, 0.16} {
		cfg := multilevel.Config{Refine: core.StrongConfig(false), ClusterCapFrac: frac}
		b.Run(fmt.Sprintf("cap=%g", frac), func(b *testing.B) {
			benchML(b, h, cfg, 0.02)
		})
	}
}

// BenchmarkAblationVCycle compares plain multistart against V-cycling the
// best solution.
func BenchmarkAblationVCycle(b *testing.B) {
	h := benchInstance(b, 1)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
	for _, vc := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("vcycles=%d", vc), func(b *testing.B) {
			heur := eval.NewML("ML", h, multilevel.Config{Refine: core.StrongConfig(false)}, bal, vc)
			r := rng.New(2031)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				best, _, _ := eval.BestOfK(heur, 2, r.Split())
				total += best.Cut
			}
			reportCut(b, total)
		})
	}
}

// BenchmarkAblationBestTie varies the equal-cut best-solution tie-break.
func BenchmarkAblationBestTie(b *testing.B) {
	h := benchInstance(b, 1)
	for _, tie := range []core.BestTie{core.FirstBest, core.LastBest, core.MostBalanced} {
		cfg := core.StrongConfig(false)
		cfg.BestTie = tie
		b.Run(tie.String(), func(b *testing.B) {
			benchFlat(b, h, cfg, 0.02)
		})
	}
}

// --- Micro-benchmarks of the substrate hot paths. ---

// BenchmarkPartitionMove measures the incremental move update.
func BenchmarkPartitionMove(b *testing.B) {
	h := benchInstance(b, 1)
	p := partition.New(h)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Move(int32(r.Intn(h.NumVertices())))
	}
}

// BenchmarkGainRecompute measures full gain computation.
func BenchmarkGainRecompute(b *testing.B) {
	h := benchInstance(b, 1)
	p := partition.New(h)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.10)
	p.RandomBalanced(rng.New(2), bal)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += p.Gain(int32(i % h.NumVertices()))
	}
	_ = sink
}

// BenchmarkCoarsenContract measures one full contraction level.
func BenchmarkCoarsenContract(b *testing.B) {
	h := benchInstance(b, 1)
	r := rng.New(3)
	clusterOf := make([]int32, h.NumVertices())
	k := h.NumVertices() / 2
	for v := range clusterOf {
		clusterOf[v] = int32(r.Intn(k))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Contract(clusterOf, k)
	}
}

// BenchmarkGenerate measures synthetic instance generation.
func BenchmarkGenerate(b *testing.B) {
	spec := gen.Scaled(gen.MustIBMProfile(1), benchScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Seed = uint64(i + 1)
		gen.MustGenerate(spec)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// BenchmarkAblationLookahead varies the Krishnamurthy lookahead depth
// (reference [30] of the paper) on tuned flat FM.
func BenchmarkAblationLookahead(b *testing.B) {
	h := benchInstance(b, 1)
	for _, depth := range []int{0, 2, 3} {
		cfg := core.StrongConfig(false)
		cfg.LookaheadDepth = depth
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchFlat(b, h, cfg, 0.02)
		})
	}
}

// BenchmarkSpectral measures the spectral baseline: Fiedler vector plus
// sweep rounding, and the spectral+FM hybrid.
func BenchmarkSpectral(b *testing.B) {
	h := benchInstance(b, 1)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.02)
	b.Run("fiedler-sweep", func(b *testing.B) {
		var total int64
		for i := 0; i < b.N; i++ {
			_, res, err := spectral.Bisect(h, bal, spectral.Options{Seed: uint64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			total += res.Cut
		}
		reportCut(b, total)
	})
	b.Run("spectral+fm", func(b *testing.B) {
		eng := core.NewEngine(h, core.StrongConfig(false), bal, rng.New(1))
		var total int64
		for i := 0; i < b.N; i++ {
			p, _, err := spectral.Bisect(h, bal, spectral.Options{Seed: uint64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			total += eng.Run(p).Cut
		}
		reportCut(b, total)
	})
}

// BenchmarkKWay measures recursive-bisection k-way partitioning with and
// without direct k-way FM refinement.
func BenchmarkKWay(b *testing.B) {
	h := benchInstance(b, 1)
	for _, refine := range []bool{false, true} {
		b.Run(fmt.Sprintf("k=4/refine=%v", refine), func(b *testing.B) {
			r := rng.New(7)
			var total int64
			for i := 0; i < b.N; i++ {
				res, err := kway.Partition(h, 4, kway.Config{Tolerance: 0.05, DirectRefine: refine}, r.Split())
				if err != nil {
					b.Fatal(err)
				}
				total += res.CutNets
			}
			reportCut(b, total)
		})
	}
}

// BenchmarkExactOracle measures the branch-and-bound optimum on a
// 24-vertex instance (the health-check yardstick).
func BenchmarkExactOracle(b *testing.B) {
	spec := gen.Spec{Name: "tiny", Cells: 24, Nets: 40, AvgNetSize: 2.8, Locality: 2, Seed: 11}
	h := gen.MustGenerate(spec)
	bal := partition.NewBalance(h.TotalVertexWeight(), 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.Bisect(h, bal, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBoundary compares full vs boundary-only refinement as
// the multilevel uncoarsening engine.
func BenchmarkAblationBoundary(b *testing.B) {
	h := benchInstance(b, 1)
	for _, boundary := range []bool{false, true} {
		cfg := core.StrongConfig(false)
		cfg.BoundaryOnly = boundary
		b.Run(fmt.Sprintf("boundary=%v", boundary), func(b *testing.B) {
			benchML(b, h, multilevel.Config{Refine: cfg}, 0.02)
		})
	}
}

// BenchmarkAblationMatching compares the hMETIS-family coarsening schemes.
func BenchmarkAblationMatching(b *testing.B) {
	h := benchInstance(b, 1)
	for _, scheme := range []multilevel.Matching{
		multilevel.FirstChoice, multilevel.RandomMatching,
		multilevel.HeavyEdge, multilevel.HyperedgeCoarsening,
	} {
		cfg := multilevel.Config{Refine: core.StrongConfig(false), Matching: scheme}
		b.Run(scheme.String(), func(b *testing.B) {
			benchML(b, h, cfg, 0.02)
		})
	}
}

// BenchmarkParsers measures netlist I/O throughput on the bench instance.
func BenchmarkParsers(b *testing.B) {
	h := benchInstance(b, 1)
	var hgrBuf, netdBuf, areBuf, patohBuf bytes.Buffer
	if err := netlist.WriteHGR(&hgrBuf, h); err != nil {
		b.Fatal(err)
	}
	if err := netlist.WriteNetD(&netdBuf, h); err != nil {
		b.Fatal(err)
	}
	if err := netlist.WriteAre(&areBuf, h); err != nil {
		b.Fatal(err)
	}
	if err := netlist.WritePaToH(&patohBuf, h); err != nil {
		b.Fatal(err)
	}
	hgr, netd, are, patoh := hgrBuf.Bytes(), netdBuf.Bytes(), areBuf.Bytes(), patohBuf.Bytes()

	b.Run("hgr", func(b *testing.B) {
		b.SetBytes(int64(len(hgr)))
		for i := 0; i < b.N; i++ {
			if _, err := netlist.ParseHGR(bytes.NewReader(hgr), "b"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("netd", func(b *testing.B) {
		b.SetBytes(int64(len(netd)))
		for i := 0; i < b.N; i++ {
			if _, err := netlist.ParseNetD(bytes.NewReader(netd), bytes.NewReader(are), "b"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("patoh", func(b *testing.B) {
		b.SetBytes(int64(len(patoh)))
		for i := 0; i < b.N; i++ {
			if _, err := netlist.ParsePaToH(bytes.NewReader(patoh), "b"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlacer measures full top-down placement per iteration, in both
// bisection and quadrisection modes.
func BenchmarkPlacer(b *testing.B) {
	h := benchInstance(b, 1)
	for _, quad := range []bool{false, true} {
		b.Run(fmt.Sprintf("quad=%v", quad), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := placer.Place(h, placer.Config{Seed: uint64(i + 1), Quadrisection: quad}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpectralFiedler measures the eigensolver alone.
func BenchmarkSpectralFiedler(b *testing.B) {
	h := benchInstance(b, 1)
	for i := 0; i < b.N; i++ {
		if _, _, err := spectral.Fiedler(h, spectral.Options{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSkipPolicy compares the two readings of the paper's
// selection rule when a bucket head is illegal: skip the whole side
// (default) vs skip only that bucket.
func BenchmarkAblationSkipPolicy(b *testing.B) {
	h := benchInstance(b, 2) // macro-heavy
	for _, skipBucket := range []bool{false, true} {
		cfg := core.StrongConfig(false)
		cfg.CorkGuard = false // let illegal heads occur
		cfg.SkipBucketOnly = skipBucket
		b.Run(fmt.Sprintf("skipBucketOnly=%v", skipBucket), func(b *testing.B) {
			benchFlat(b, h, cfg, 0.02)
		})
	}
}

// BenchmarkParRefineKWay measures the synchronous-round parallel k-way
// refiner at several thread counts on one pinned instance and start.
// ReportAllocs keeps the steady-state allocation discipline visible in
// every run: the per-op count must stay at the amortized arena-growth
// floor, not scale with moves (the regression the hgbench parfm case pins
// to exactly zero).
func BenchmarkParRefineKWay(b *testing.B) {
	h := benchInstance(b, 1)
	const k = 8
	base := make(Assignment, h.NumVertices())
	r := rng.New(2033)
	for v := range base {
		base[v] = int32(r.Intn(k))
	}
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			eng, err := kwayfm.NewParEngine(h, k, kwayfm.ParConfig{
				Tolerance: 0.15,
				Objective: kwayfm.CutObjective,
				Threads:   threads,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			scratch := make(Assignment, h.NumVertices())
			var total int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(scratch, base)
				res, err := eng.Refine(context.Background(), scratch)
				if err != nil {
					b.Fatal(err)
				}
				total += res.Final
			}
			reportCut(b, total)
		})
	}
}
