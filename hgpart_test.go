package hgpart

import (
	"bytes"
	"testing"
)

func testGraph(t testing.TB) *Hypergraph {
	t.Helper()
	h, err := Generate(Scaled(MustIBMProfile(1), 0.05))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBisectML(t *testing.T) {
	h := testGraph(t)
	p, res, err := Bisect(h, BisectOptions{Tolerance: 0.02, Starts: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bal := NewBalance(h.TotalVertexWeight(), 0.02)
	if !p.Legal(bal) {
		t.Fatal("illegal result")
	}
	if res.Cut != p.Cut() || p.Cut() != p.CutFromScratch() {
		t.Fatal("cut inconsistent")
	}
	if res.Work <= 0 {
		t.Fatal("no work recorded")
	}
}

func TestBisectEngines(t *testing.T) {
	h := testGraph(t)
	for _, kind := range []EngineKind{EngineML, EngineFlatFM, EngineFlatCLIP} {
		p, res, err := Bisect(h, BisectOptions{Engine: kind, Seed: 4})
		if err != nil {
			t.Fatalf("engine %d: %v", kind, err)
		}
		if p == nil || res.Cut <= 0 {
			t.Fatalf("engine %d produced nothing", kind)
		}
	}
	if _, _, err := Bisect(h, BisectOptions{Engine: EngineKind(99)}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestBisectDefaults(t *testing.T) {
	h := testGraph(t)
	// Zero options must fill sane defaults and succeed.
	p, _, err := Bisect(h, BisectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bal := NewBalance(h.TotalVertexWeight(), 0.02)
	if !p.Legal(bal) {
		t.Fatal("default tolerance should be 2%")
	}
}

func TestBisectDeterministic(t *testing.T) {
	h := testGraph(t)
	_, a, err := Bisect(h, BisectOptions{Seed: 9, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Bisect(h, BisectOptions{Seed: 9, Starts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cut != b.Cut || a.Work != b.Work {
		t.Fatalf("Bisect not deterministic: %+v vs %+v", a, b)
	}
}

func TestFacadeIO(t *testing.T) {
	h := testGraph(t)
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ParseHGR(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPins() != h.NumPins() {
		t.Fatal("hgr round trip lost pins")
	}

	var nets, ares bytes.Buffer
	if err := WriteNetD(&nets, h); err != nil {
		t.Fatal(err)
	}
	if err := WriteAre(&ares, h); err != nil {
		t.Fatal(err)
	}
	back2, err := ParseNetD(&nets, &ares, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if back2.TotalVertexWeight() != h.TotalVertexWeight() {
		t.Fatal("netD round trip lost area")
	}
}

func TestFacadeFMEngine(t *testing.T) {
	h := testGraph(t)
	bal := NewBalance(h.TotalVertexWeight(), 0.10)
	r := NewRNG(5)
	p := NewPartition(h)
	p.RandomBalanced(r, bal)
	start := p.Cut()
	eng := NewFMEngine(h, StrongFMConfig(false), bal, r)
	res := eng.Run(p)
	if res.Cut > start {
		t.Fatal("FM worsened")
	}
	// Naive config must also run via the facade.
	p2 := NewPartition(h)
	p2.RandomBalanced(r, bal)
	eng2 := NewFMEngine(h, NaiveFMConfig(true), bal, r)
	if eng2.Run(p2).Cut <= 0 {
		t.Fatal("naive CLIP produced nonpositive cut")
	}
}

func TestFacadeHeuristicsAndMultistart(t *testing.T) {
	h := testGraph(t)
	bal := NewBalance(h.TotalVertexWeight(), 0.10)
	r := NewRNG(6)
	flat := NewFlatHeuristic("flat", h, StrongFMConfig(false), bal, r.Split())
	ml := NewMLHeuristic("ml", h, MLConfig{Refine: StrongFMConfig(false)}, bal, 1)
	for _, heur := range []Heuristic{flat, ml} {
		samples, best := MultistartSamples(heur, 3, r.Split())
		if len(samples) != 3 || best.P == nil {
			t.Fatalf("%s multistart broken", heur.Name())
		}
	}
}

func TestFacadePlace(t *testing.T) {
	h := testGraph(t)
	pl, err := Place(h, PlacerConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if pl.HPWL(h) <= 0 {
		t.Fatal("zero HPWL")
	}
}

func TestFacadeStats(t *testing.T) {
	h := testGraph(t)
	s := ComputeStats(h)
	if s.Vertices != h.NumVertices() {
		t.Fatal("stats mismatch")
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := NewBuilder(4, 2)
	b.AddVertices(4, 2)
	b.AddEdge(1, 0, 1)
	b.AddEdge(1, 2, 3)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, res, err := Bisect(h, BisectOptions{Tolerance: 0.5, Engine: EngineFlatFM})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cut != 0 {
		t.Fatalf("two disjoint pairs should split with cut 0, got %d (sides %v)",
			res.Cut, p.Sides())
	}
}

func TestFacadeBaselines(t *testing.T) {
	tiny := MustGenerate(GenSpec{Name: "t", Cells: 16, Nets: 24, AvgNetSize: 2.6, Locality: 2, Seed: 2})
	bal := NewBalance(tiny.TotalVertexWeight(), 0.25)
	opt, err := ExactBisect(tiny, bal, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cut < 0 || len(opt.Sides) != tiny.NumVertices() {
		t.Fatalf("exact result malformed: %+v", opt)
	}

	h := testGraph(t)
	bal = NewBalance(h.TotalVertexWeight(), 0.10)
	p, sres, err := SpectralBisect(h, bal, SpectralOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Legal(bal) || sres.Cut != p.Cut() {
		t.Fatal("spectral facade result inconsistent")
	}
	// Spectral must not beat the proven optimum on the tiny instance.
	tp, tres, err := SpectralBisect(tiny, NewBalance(tiny.TotalVertexWeight(), 0.25), SpectralOptions{})
	if err == nil {
		if tres.Cut < opt.Cut {
			t.Fatalf("spectral (%d) beat optimum (%d)", tres.Cut, opt.Cut)
		}
		_ = tp
	}
}

func TestFacadeTrace(t *testing.T) {
	h := testGraph(t)
	bal := NewBalance(h.TotalVertexWeight(), 0.10)
	r := NewRNG(4)
	eng := NewFMEngine(h, StrongFMConfig(false), bal, r)
	rec := &TraceRecorder{}
	eng.SetTracer(rec)
	p := NewPartition(h)
	p.RandomBalanced(r, bal)
	res := eng.Run(p)
	if len(rec.Passes()) != res.Passes {
		t.Fatalf("trace recorded %d passes, engine %d", len(rec.Passes()), res.Passes)
	}
}

func TestFacadeNewFormats(t *testing.T) {
	h := testGraph(t)
	var buf bytes.Buffer
	if err := WritePaToH(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePaToH(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPins() != h.NumPins() {
		t.Fatal("patoh round trip lost pins")
	}

	var nodes, nets bytes.Buffer
	if err := WriteBookshelf(&nodes, &nets, h, nil); err != nil {
		t.Fatal(err)
	}
	d, err := ParseBookshelf(&nodes, &nets, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if d.H.NumPins() != h.NumPins() {
		t.Fatal("bookshelf round trip lost pins")
	}
}
