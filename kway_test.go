package hgpart

import (
	"math"
	"testing"
)

func TestPartitionKWayFacade(t *testing.T) {
	h := testGraph(t)
	res, err := PartitionKWay(h, 4, KWayConfig{Tolerance: 0.1}, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Parts.Validate(4); err != nil {
		t.Fatal(err)
	}
	if res.CutNets != CutSize(h, res.Parts) {
		t.Fatal("result cut disagrees with objective.CutSize")
	}
	if res.ConnectivityMinusOne != ConnectivityMinusOne(h, res.Parts) {
		t.Fatal("connectivity disagrees")
	}
	if got := Imbalance(h, res.Parts, 4); math.Abs(got-res.Imbalance) > 1e-12 {
		t.Fatal("imbalance disagrees")
	}
}

func TestObjectiveFacade(t *testing.T) {
	h := testGraph(t)
	res, err := PartitionKWay(h, 2, KWayConfig{Tolerance: 0.05}, NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	a := res.Parts
	if SumOfExternalDegrees(h, a) != ConnectivityMinusOne(h, a)+CutSize(h, a) {
		t.Fatal("SOED identity broken via facade")
	}
	if RatioCut(h, a) <= 0 {
		t.Fatal("ratio cut nonpositive on cut instance")
	}
	if ScaledCost(h, a, 2) <= 0 {
		t.Fatal("scaled cost nonpositive")
	}
	if Absorption(h, a, 2) <= 0 {
		t.Fatal("absorption nonpositive")
	}
	w := PartWeights(h, a, 2)
	if w[0]+w[1] != h.TotalVertexWeight() {
		t.Fatal("part weights don't sum to total")
	}
}

func TestBisectFixedFacade(t *testing.T) {
	h := testGraph(t)
	fixed := make([]int8, h.NumVertices())
	for i := range fixed {
		fixed[i] = FreeVertex
	}
	fixed[0] = 0
	fixed[1] = 1
	p, st := BisectFixed(h, fixed, 0.1, 3)
	if p.Side(0) != 0 || p.Side(1) != 1 {
		t.Fatal("BisectFixed ignored pins")
	}
	bal := NewBalance(h.TotalVertexWeight(), 0.1)
	if !p.Legal(bal) || st.Cut != p.Cut() {
		t.Fatal("BisectFixed result invalid")
	}
}

func TestMCNCFacade(t *testing.T) {
	names := MCNCNames()
	if len(names) == 0 {
		t.Fatal("no MCNC names")
	}
	spec, err := MCNCProfile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	h, err := Generate(Scaled(spec, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxVertexWeight() != 1 {
		t.Fatal("MCNC instance must be unit-area")
	}
}
