package hgpart

import (
	"io"

	"hgpart/internal/exact"
	"hgpart/internal/netlist"
	"hgpart/internal/partition"
	"hgpart/internal/rent"
	"hgpart/internal/spectral"
	"hgpart/internal/trace"
)

// Baseline comparators and instrumentation, re-exported from
// internal/exact, internal/spectral and internal/trace.

type (
	// ExactOptions bounds the branch-and-bound optimal bisector.
	ExactOptions = exact.Options
	// ExactResult is a proven-optimal bisection.
	ExactResult = exact.Result
	// SpectralOptions controls the spectral eigensolver and rounding.
	SpectralOptions = spectral.Options
	// SpectralResult reports a spectral bisection.
	SpectralResult = spectral.Result
	// TraceRecorder records FM pass/move trajectories (implements the
	// engine Tracer).
	TraceRecorder = trace.Recorder
	// TraceSummary aggregates a recorded run.
	TraceSummary = trace.Summary
	// BookshelfDesign is a parsed Bookshelf .nodes/.nets pair.
	BookshelfDesign = netlist.BookshelfDesign
)

// ExactBisect returns a proven minimum-cut balanced bisection for small
// instances (branch and bound; default limit 32 vertices). It is the
// "absolute yardstick" the paper's health-check maxim calls for.
func ExactBisect(h *Hypergraph, bal Balance, opt ExactOptions) (ExactResult, error) {
	return exact.Bisect(h, bal, opt)
}

// SpectralBisect computes a spectral (Fiedler-vector sweep) bisection — an
// independent baseline from the ratio-cut literature the paper cites.
func SpectralBisect(h *Hypergraph, bal Balance, opt SpectralOptions) (*Partition, SpectralResult, error) {
	return spectral.Bisect(h, bal, opt)
}

// ParsePaToH reads a PaToH-format hypergraph.
func ParsePaToH(r io.Reader, name string) (*Hypergraph, error) { return netlist.ParsePaToH(r, name) }

// WritePaToH writes h in PaToH format (net and cell weights).
func WritePaToH(w io.Writer, h *Hypergraph) error { return netlist.WritePaToH(w, h) }

// ParseBookshelf reads a UCLA Bookshelf .nodes/.nets pair.
func ParseBookshelf(nodesR, netsR io.Reader, name string) (*BookshelfDesign, error) {
	return netlist.ParseBookshelf(nodesR, netsR, name)
}

// WriteBookshelf writes h as a Bookshelf .nodes/.nets pair; terminal may be
// nil.
func WriteBookshelf(nodesW, netsW io.Writer, h *Hypergraph, terminal []bool) error {
	return netlist.WriteBookshelf(nodesW, netsW, h, terminal)
}

// WriteBookshelfPl writes a Bookshelf .pl placement file for unit-square
// coordinates (e.g. a Placement's X/Y), scaled by the given factor.
func WriteBookshelfPl(w io.Writer, x, y []float64, scale float64) error {
	return netlist.WriteBookshelfPl(w, x, y, scale)
}

// SpectralBisectRatioCut computes the Wei-Cheng ratio-cut spectral split
// (no hard balance constraint) and returns the partition, result and the
// achieved ratio-cut value.
func SpectralBisectRatioCut(h *Hypergraph, opt SpectralOptions) (*Partition, SpectralResult, float64, error) {
	return spectral.BisectRatioCut(h, opt)
}

// NewBalanceBounds builds a Balance directly from absolute bounds; useful
// with ExactBisect in tests and tools.
func NewBalanceBounds(lo, hi int64) Balance { return partition.Balance{Lo: lo, Hi: hi} }

// RentOptions controls Rent-exponent estimation.
type RentOptions = rent.Options

// RentEstimate is a fitted Rent's-rule model.
type RentEstimate = rent.Estimate

// RentAnalyze estimates the Rent exponent of h by recursive bisection —
// the §2.1 instance-structure diagnostic (real designs sit near p in
// [0.5, 0.75]; structureless graphs push toward 1).
func RentAnalyze(h *Hypergraph, opt RentOptions) (RentEstimate, error) {
	return rent.Analyze(h, opt)
}
