package hgpart_test

import (
	"fmt"

	"hgpart"
)

// ExampleBisect demonstrates the one-call bisection API on a tiny
// hand-built hypergraph: two 2-pin nets and one bridge net.
func ExampleBisect() {
	b := hgpart.NewBuilder(4, 3)
	b.AddVertices(4, 1)
	b.AddEdge(1, 0, 1) // pair A
	b.AddEdge(1, 2, 3) // pair B
	b.AddEdge(1, 1, 2) // bridge
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	p, res, err := hgpart.Bisect(h, hgpart.BisectOptions{
		Tolerance: 0.5,
		Engine:    hgpart.EngineFlatFM,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("cut:", res.Cut)
	fmt.Println("balanced:", p.Area(0) == 2 && p.Area(1) == 2)
	// Output:
	// cut: 1
	// balanced: true
}

// ExampleNewBalance shows the paper's tolerance convention: 2% means each
// side holds between 49% and 51% of total area.
func ExampleNewBalance() {
	bal := hgpart.NewBalance(1000, 0.02)
	fmt.Println(bal.Lo, bal.Hi)
	// Output:
	// 490 510
}

// ExampleComputeStats prints the §2.1 "salient attributes" of an instance.
func ExampleComputeStats() {
	b := hgpart.NewBuilder(3, 2)
	b.AddVertices(3, 2)
	b.AddEdge(1, 0, 1)
	b.AddEdge(1, 1, 2)
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	s := hgpart.ComputeStats(h)
	fmt.Println(s.Vertices, s.Edges, s.Pins)
	// Output:
	// 3 2 4
}

// ExampleExactBisect verifies a heuristic against a proven optimum on a
// small instance — the paper's "check your health regularly".
func ExampleExactBisect() {
	b := hgpart.NewBuilder(6, 3)
	b.AddVertices(6, 1)
	b.AddEdge(1, 0, 1, 2) // triangle-ish block
	b.AddEdge(1, 3, 4, 5) // second block
	b.AddEdge(1, 2, 3)    // bridge
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	bal := hgpart.NewBalance(h.TotalVertexWeight(), 0.0)
	opt, err := hgpart.ExactBisect(h, bal, hgpart.ExactOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("optimal cut:", opt.Cut)
	// Output:
	// optimal cut: 1
}

// ExampleCutSize evaluates the k-way objectives over an assignment.
func ExampleCutSize() {
	b := hgpart.NewBuilder(4, 2)
	b.AddVertices(4, 1)
	b.AddEdge(1, 0, 1, 2, 3) // spans everything
	b.AddEdge(1, 0, 1)       // local pair
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	parts := hgpart.Assignment{0, 0, 1, 2}
	fmt.Println("cut:", hgpart.CutSize(h, parts))
	fmt.Println("lambda-1:", hgpart.ConnectivityMinusOne(h, parts))
	// Output:
	// cut: 1
	// lambda-1: 2
}
