// Package hgpart is a hypergraph partitioning library for VLSI CAD,
// reproducing the testbench, algorithms and experimental methodology of
// Caldwell, Kahng, Kennings and Markov, "Hypergraph Partitioning for VLSI
// CAD: Methodology for Heuristic Development, Experimentation and
// Reporting" (DAC 1999).
//
// The library provides:
//
//   - a weighted hypergraph representation with ISPD98 (.netD/.are) and
//     hMETIS (.hgr) I/O and a synthetic ISPD98-like instance generator;
//   - a Fiduccia–Mattheyses testbench in which every implicit
//     implementation decision (bucket insertion order, zero-delta-gain
//     update policy, tie-breaking biases, CLIP mode, corking guard) is an
//     explicit configuration knob;
//   - a multilevel (hMETIS-style) partitioner with V-cycling;
//   - the paper's evaluation methodology: multistart statistics,
//     best-so-far curves, non-dominated (cost, runtime) frontiers,
//     speed-dependent ranking diagrams and significance tests;
//   - a top-down recursive-bisection placer with terminal propagation,
//     the driving application context.
//
// Quick start:
//
//	h := hgpart.MustGenerate(hgpart.Scaled(hgpart.MustIBMProfile(1), 0.1))
//	p, res, err := hgpart.Bisect(h, hgpart.BisectOptions{Tolerance: 0.02, Starts: 4})
//	fmt.Println("cut:", res.Cut)
package hgpart

import (
	"context"
	"fmt"
	"io"

	"hgpart/internal/core"
	"hgpart/internal/eval"
	"hgpart/internal/gen"
	"hgpart/internal/hypergraph"
	"hgpart/internal/multilevel"
	"hgpart/internal/netlist"
	"hgpart/internal/partition"
	"hgpart/internal/placer"
	"hgpart/internal/portfolio"
	"hgpart/internal/rng"
)

// Re-exported core types. Aliases keep the implementation in focused
// internal packages while presenting one import path to users.
type (
	// Hypergraph is a weighted hypergraph in CSR form.
	Hypergraph = hypergraph.Hypergraph
	// Builder accumulates vertices and nets into a Hypergraph.
	Builder = hypergraph.Builder
	// Stats summarizes instance statistics (§2.1 of the paper).
	Stats = hypergraph.Stats
	// Balance is a per-side area constraint.
	Balance = partition.Balance
	// Partition is mutable 2-way partition state.
	Partition = partition.P
	// FMConfig fully describes a flat FM/CLIP variant.
	FMConfig = core.Config
	// FMResult reports a flat engine run.
	FMResult = core.Result
	// FMEngine runs flat FM passes over a partition.
	FMEngine = core.Engine
	// MLConfig parameterizes the multilevel partitioner.
	MLConfig = multilevel.Config
	// MLStats reports a multilevel run.
	MLStats = multilevel.Stats
	// MLPartitioner is the multilevel (hMETIS-style) bisector.
	MLPartitioner = multilevel.Partitioner
	// GenSpec parameterizes the synthetic instance generator.
	GenSpec = gen.Spec
	// PlacerConfig controls the top-down placer.
	PlacerConfig = placer.Config
	// Placement is the placer result.
	Placement = placer.Placement
	// RNG is the deterministic random generator used throughout.
	RNG = rng.RNG
	// Heuristic is one independently startable partitioning method.
	Heuristic = eval.Heuristic
	// Outcome is the result of one heuristic start.
	Outcome = eval.Outcome
	// RunOptions configures the fault-tolerant multistart harness.
	RunOptions = eval.RunOptions
	// RunReport is the harness's full per-start and aggregate result.
	RunReport = eval.RunReport
	// StartResult is the fate of one harness start.
	StartResult = eval.StartResult
	// Checkpoint journals completed starts for interrupt/resume.
	Checkpoint = eval.Checkpoint
)

// Re-exported FM configuration enums.
const (
	AllDeltaGain = core.AllDeltaGain
	NonzeroOnly  = core.NonzeroOnly
	Away         = core.Away
	Part0        = core.Part0
	Toward       = core.Toward
	LIFO         = core.LIFO
	FIFO         = core.FIFO
	RandomOrder  = core.RandomOrder
	FirstBest    = core.FirstBest
	LastBest     = core.LastBest
	MostBalanced = core.MostBalanced
)

// NewBuilder returns a hypergraph builder with capacity hints.
func NewBuilder(vertexHint, edgeHint int) *Builder {
	return hypergraph.NewBuilder(vertexHint, edgeHint)
}

// NewBalance converts a fractional tolerance (0.02 = sides within
// [49%, 51%]) into absolute bounds.
func NewBalance(totalWeight int64, tolerance float64) Balance {
	return partition.NewBalance(totalWeight, tolerance)
}

// NewPartition allocates partition state for h.
func NewPartition(h *Hypergraph) *Partition { return partition.New(h) }

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// ComputeStats derives instance statistics for h.
func ComputeStats(h *Hypergraph) Stats { return hypergraph.ComputeStats(h) }

// NewFMEngine builds a flat FM engine; see FMConfig for the knobs. r is
// required when cfg.Insertion is RandomOrder and harmless otherwise.
func NewFMEngine(h *Hypergraph, cfg FMConfig, bal Balance, r *RNG) *FMEngine {
	return core.NewEngine(h, cfg, bal, r)
}

// StrongFMConfig returns the tuned flat configuration ("Our LIFO"/"Our
// CLIP" in the paper's Tables 2/3).
func StrongFMConfig(clip bool) FMConfig { return core.StrongConfig(clip) }

// NaiveFMConfig returns the deliberately weak configuration standing in for
// the paper's "Reported" rows.
func NaiveFMConfig(clip bool) FMConfig { return core.NaiveConfig(clip) }

// NewMLPartitioner builds the multilevel bisector.
func NewMLPartitioner(h *Hypergraph, cfg MLConfig, bal Balance) *MLPartitioner {
	return multilevel.New(h, cfg, bal)
}

// Generate synthesizes an instance from spec.
func Generate(spec GenSpec) (*Hypergraph, error) { return gen.Generate(spec) }

// MustGenerate is Generate that panics on error.
func MustGenerate(spec GenSpec) *Hypergraph { return gen.MustGenerate(spec) }

// IBMProfile returns the synthetic stand-in spec for ISPD98 instance i
// (1-18), matching the published cell/net/pin statistics.
func IBMProfile(i int) (GenSpec, error) { return gen.IBMProfile(i) }

// MustIBMProfile is IBMProfile that panics on an invalid index.
func MustIBMProfile(i int) GenSpec { return gen.MustIBMProfile(i) }

// Scaled downsizes a generator spec by factor f in (0, 1].
func Scaled(spec GenSpec, f float64) GenSpec { return gen.Scaled(spec, f) }

// ParseHGR reads an hMETIS-format hypergraph.
func ParseHGR(r io.Reader, name string) (*Hypergraph, error) { return netlist.ParseHGR(r, name) }

// WriteHGR writes h in hMETIS format (edge and vertex weights).
func WriteHGR(w io.Writer, h *Hypergraph) error { return netlist.WriteHGR(w, h) }

// ParseNetD reads an ISPD98 .netD/.net netlist with an optional .are area
// file (nil for unit areas).
func ParseNetD(netR, areR io.Reader, name string) (*Hypergraph, error) {
	return netlist.ParseNetD(netR, areR, name)
}

// WriteNetD writes h as an ISPD98 .netD netlist.
func WriteNetD(w io.Writer, h *Hypergraph) error { return netlist.WriteNetD(w, h) }

// WriteAre writes h's vertex areas as an ISPD98 .are file.
func WriteAre(w io.Writer, h *Hypergraph) error { return netlist.WriteAre(w, h) }

// ParseError is the typed failure every netlist parser returns: it names
// the format ("hgr", "netd", ...) and the instance, and unwraps to the
// underlying cause.
type ParseError = netlist.ParseError

// AsParseError reports whether err stems from netlist parsing and, if so,
// returns the typed error.
func AsParseError(err error) (*ParseError, bool) { return netlist.AsParseError(err) }

// Place runs top-down recursive min-cut bisection placement on h.
func Place(h *Hypergraph, cfg PlacerConfig) (*Placement, error) { return placer.Place(h, cfg) }

// EngineKind selects the partitioning engine for Bisect.
type EngineKind int

const (
	// EngineML is the multilevel partitioner (default; strongest).
	EngineML EngineKind = iota
	// EngineFlatFM is tuned flat LIFO FM.
	EngineFlatFM
	// EngineFlatCLIP is tuned flat CLIP FM.
	EngineFlatCLIP
)

// BisectOptions configures the one-call Bisect API.
type BisectOptions struct {
	// Tolerance is the balance tolerance (default 0.02).
	Tolerance float64
	// Starts is the number of independent starts; the best is kept
	// (default 1).
	Starts int
	// VCycles applied to the best solution when Engine is EngineML
	// (default 1).
	VCycles int
	// Engine selects the algorithm (default EngineML).
	Engine EngineKind
	// Seed drives all randomization (default 1).
	Seed uint64
	// ReferenceImpl runs the frozen seed FM implementation instead of the
	// arena-based engine. Results are bit-identical either way (the
	// differential tests enforce it); the reference exists for exactly that
	// comparison, and for honest before/after timing via cmd/hgbench.
	ReferenceImpl bool
}

// BisectResult reports the outcome of Bisect.
type BisectResult struct {
	// Cut is the weighted cut of the returned partition.
	Cut int64
	// Seconds is the total wall-clock time of all starts.
	Seconds float64
	// Work is the total deterministic work-unit count.
	Work int64
}

// Bisect partitions h into two sides using the selected engine and
// multistart regime, returning the best legal partition found.
func Bisect(h *Hypergraph, opt BisectOptions) (*Partition, BisectResult, error) {
	if opt.Tolerance <= 0 {
		opt.Tolerance = 0.02
	}
	if opt.Starts <= 0 {
		opt.Starts = 1
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.VCycles == 0 {
		opt.VCycles = 1
	}
	bal := partition.NewBalance(h.TotalVertexWeight(), opt.Tolerance)
	r := rng.New(opt.Seed)

	var heur eval.Heuristic
	switch opt.Engine {
	case EngineML:
		refine := core.StrongConfig(false)
		refine.ReferenceImpl = opt.ReferenceImpl
		heur = eval.NewML("ML", h, multilevel.Config{Refine: refine}, bal, opt.VCycles)
	case EngineFlatFM:
		cfg := core.StrongConfig(false)
		cfg.ReferenceImpl = opt.ReferenceImpl
		heur = eval.NewFlat("flat-FM", h, cfg, bal, r.Split())
	case EngineFlatCLIP:
		cfg := core.StrongConfig(true)
		cfg.ReferenceImpl = opt.ReferenceImpl
		heur = eval.NewFlat("flat-CLIP", h, cfg, bal, r.Split())
	default:
		return nil, BisectResult{}, fmt.Errorf("hgpart: unknown engine %d", opt.Engine)
	}
	best, secs, work := eval.BestOfK(heur, opt.Starts, r)
	if best.P == nil {
		return nil, BisectResult{}, fmt.Errorf("hgpart: no legal partition found (tolerance %.3f may be infeasible)", opt.Tolerance)
	}
	return best.P, BisectResult{Cut: best.P.Cut(), Seconds: secs, Work: work}, nil
}

// MultistartSamples runs n independent starts of heur and returns the
// per-start outcomes plus the best one — the raw material for best-so-far
// curves and significance tests.
func MultistartSamples(heur Heuristic, n int, r *RNG) ([]Outcome, Outcome) {
	return eval.Multistart(heur, n, r)
}

// NewFlatHeuristic wraps a flat FM configuration as a multistartable
// Heuristic.
func NewFlatHeuristic(label string, h *Hypergraph, cfg FMConfig, bal Balance, r *RNG) Heuristic {
	return eval.NewFlat(label, h, cfg, bal, r)
}

// NewMLHeuristic wraps the multilevel partitioner as a multistartable
// Heuristic with vcycles V-cycles applied to the best of a multistart.
func NewMLHeuristic(label string, h *Hypergraph, cfg MLConfig, bal Balance, vcycles int) Heuristic {
	return eval.NewML(label, h, cfg, bal, vcycles)
}

// RunMultistart runs n independent starts of the heuristic produced by
// factory through the fault-tolerant evaluation harness: cancellation via
// ctx, wall-clock and work-unit budgets, panic isolation, bounded
// retry-with-reseed, per-start verification and checkpoint/resume, all while
// preserving per-start determinism (see internal/eval.RunMultistart).
func RunMultistart(ctx context.Context, factory func() Heuristic, n int, seed uint64, opt RunOptions) *RunReport {
	return eval.RunMultistart(ctx, factory, n, seed, opt)
}

// RerunStart deterministically recomputes start i of an n-start multistart
// run with the given root seed — e.g. to recover the partition of a best
// start that was resumed from a checkpoint journal (which persists cuts,
// not assignments). attempts is the Attempts count recorded for the start
// (1 when it succeeded first try).
func RerunStart(factory func() Heuristic, seed uint64, i, attempts int) (Outcome, error) {
	return eval.RerunStart(factory, seed, i, attempts)
}

// OpenCheckpoint opens (or, with resume, reloads) a JSONL start journal for
// an experiment identified by (name, seed, n); pass it via
// RunOptions.Checkpoint so an interrupted multistart can be resumed with
// identical aggregate statistics.
func OpenCheckpoint(path, name string, seed uint64, n int, resume bool) (*Checkpoint, error) {
	return eval.OpenCheckpoint(path, name, seed, n, resume)
}

// VerifyOutcome returns the standard per-start verifier for
// RunOptions.Verify: partition-state consistency, the balance constraint and
// cut agreement.
func VerifyOutcome(bal Balance) func(Outcome) error { return eval.VerifyOutcome(bal) }

// MCNCProfile returns a synthetic stand-in spec for a classic MCNC test
// case (unit areas, no macros) — the old-era benchmark class the paper
// contrasts with ISPD98. See MCNCNames for the available circuits.
func MCNCProfile(name string) (GenSpec, error) { return gen.MCNCProfile(name) }

// MCNCNames lists the available MCNC profile names.
func MCNCNames() []string { return gen.MCNCNames() }

// Portfolio scheduling (DESIGN.md §15): cheap instance features bucket each
// request, a curated portfolio of engine configurations races for the first
// slice of the budget, and the remaining budget commits to the Pareto-best
// arm. An optional persistent outcome store warm-starts predictions across
// requests; it is strictly advisory and never changes results.
type (
	// PortfolioFeatures is the deterministic instance-feature vector.
	PortfolioFeatures = portfolio.Features
	// PortfolioBucket is the discretized feature grid cell.
	PortfolioBucket = portfolio.Bucket
	// PortfolioArm is one engine configuration in the racing portfolio.
	PortfolioArm = portfolio.Arm
	// PortfolioScheduler races arms and commits to the winner.
	PortfolioScheduler = portfolio.Scheduler
	// PortfolioRaceResult is the racing slice's outcome.
	PortfolioRaceResult = portfolio.RaceResult
	// PortfolioResult is the full race+commit outcome.
	PortfolioResult = portfolio.Result
	// PortfolioStore is the persistent per-bucket outcome store.
	PortfolioStore = portfolio.Store
)

// ExtractPortfolioFeatures computes the deterministic feature vector in one
// O(pins) sweep.
func ExtractPortfolioFeatures(h *Hypergraph) PortfolioFeatures { return portfolio.Extract(h) }

// PortfolioBucketOf discretizes a feature vector onto the bucket grid.
func PortfolioBucketOf(f PortfolioFeatures) PortfolioBucket { return portfolio.BucketOf(f) }

// DefaultPortfolioArms returns the curated racing portfolio.
func DefaultPortfolioArms() []PortfolioArm { return portfolio.DefaultArms() }

// OpenPortfolioStore opens (creating or repairing as needed) the CRC-framed
// outcome store at path.
func OpenPortfolioStore(path string) (*PortfolioStore, error) { return portfolio.OpenStore(path) }

// RunPortfolio executes the full portfolio schedule — race then commit —
// and returns the byte-deterministic result. store may be nil; warm or
// cold, it never changes the result.
func RunPortfolio(ctx context.Context, h *Hypergraph, bal Balance, seed uint64,
	starts int, workBudget int64, store *PortfolioStore) (*PortfolioResult, error) {
	s := &portfolio.Scheduler{Store: store}
	return s.Run(ctx, h, bal, seed, starts, workBudget)
}
