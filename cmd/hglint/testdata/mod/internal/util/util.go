// Fixture module for the hglint CLI tests: a clean package.
package util

func Add(a, b int) int { return a + b }
