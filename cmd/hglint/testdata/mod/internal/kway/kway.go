// Fixture module for the hglint CLI tests: an algorithm package with a
// banned import.
package kway

import "math/rand"

func Shuffle(n int) int {
	return rand.Intn(n)
}
