module fixmod

go 1.22
