// hglint runs the repository's determinism and reproducibility analyzers
// (internal/lint) over module packages, multichecker-style.
//
// Usage:
//
//	hglint [flags] [packages]
//
// Packages are module-relative patterns ("./...", "internal/eval",
// "internal/..."); the default is ./... . Exit status is 0 when no findings
// are reported, 1 when findings are reported, 2 on usage or load errors.
//
// Flags:
//
//	-json         emit findings as a JSON array of
//	              {analyzer, file, line, col, message} objects
//	-fix          apply suggested fixes to the source, then report what
//	              remains
//	-analyzers    comma-separated subset of analyzers to run
//	-strict       additionally flag stale //hglint:ignore directives that no
//	              longer suppress any finding (requires the full analyzer
//	              set, so -strict and -analyzers are mutually exclusive)
//	-list         print the available analyzers and exit
//
// Findings are suppressed with an in-source annotation carrying a mandatory
// reason: //hglint:ignore <analyzer> <reason> (see internal/lint/analysis).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hgpart/internal/lint"
	"hgpart/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hglint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	fix := fs.Bool("fix", false, "apply suggested fixes, then report what remains")
	subset := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	strict := fs.Bool("strict", false, "also flag stale ignore directives (incompatible with -analyzers)")
	list := fs.Bool("list", false, "print the available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *strict && *subset != "" {
		// A directive is only provably stale against the full analyzer set:
		// a subset run would see every other analyzer's suppression as
		// unused.
		fmt.Fprintln(stderr, "hglint: -strict requires the full analyzer set; drop -analyzers")
		return 2
	}

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *subset != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*subset, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "hglint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, modPath, err := analysis.FindModule(".")
	if err != nil {
		fmt.Fprintf(stderr, "hglint: %v\n", err)
		return 2
	}
	loader := analysis.NewLoader(modRoot, modPath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "hglint: %v\n", err)
		return 2
	}
	opts := analysis.Options{ReportStale: *strict}
	findings, err := analysis.RunWith(modRoot, pkgs, analyzers, opts)
	if err != nil {
		fmt.Fprintf(stderr, "hglint: %v\n", err)
		return 2
	}

	if *fix {
		changed, err := analysis.ApplyFixes(loader.Fset(), findings)
		for _, f := range changed {
			fmt.Fprintf(stderr, "hglint: fixed %s\n", f)
		}
		if err != nil {
			fmt.Fprintf(stderr, "hglint: applying fixes: %v\n", err)
			return 2
		}
		// Re-analyze from scratch so fixed findings disappear and the
		// remaining ones carry correct positions.
		loader = analysis.NewLoader(modRoot, modPath)
		pkgs, err = loader.Load(patterns...)
		if err != nil {
			fmt.Fprintf(stderr, "hglint: reloading after fixes: %v\n", err)
			return 2
		}
		findings, err = analysis.RunWith(modRoot, pkgs, analyzers, opts)
		if err != nil {
			fmt.Fprintf(stderr, "hglint: %v\n", err)
			return 2
		}
	}

	if *jsonOut {
		if findings == nil {
			findings = []analysis.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "hglint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
