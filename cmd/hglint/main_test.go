package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hgpart/internal/lint"
	"hgpart/internal/lint/analysis"
)

func TestJSONOutput(t *testing.T) {
	t.Chdir("testdata/mod")
	var stdout, stderr strings.Builder
	code := run([]string{"-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr: %s", code, stderr.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(stdout.String()), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded")
	}
	f := findings[0]
	if f.Analyzer != "detrand" {
		t.Errorf("finding analyzer = %q, want detrand", f.Analyzer)
	}
	if f.File != "internal/kway/kway.go" {
		t.Errorf("finding file = %q, want internal/kway/kway.go", f.File)
	}
	if f.Line <= 0 || f.Col <= 0 {
		t.Errorf("finding position %d:%d not positive", f.Line, f.Col)
	}
	if !strings.Contains(f.Message, "math/rand") {
		t.Errorf("finding message %q does not mention math/rand", f.Message)
	}
}

func TestJSONEmptyOnCleanPackage(t *testing.T) {
	t.Chdir("testdata/mod")
	var stdout, stderr strings.Builder
	code := run([]string{"-json", "internal/util"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean run output = %q, want []", got)
	}
}

func TestPlainOutput(t *testing.T) {
	t.Chdir("testdata/mod")
	var stdout, stderr strings.Builder
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "internal/kway/kway.go:") || !strings.Contains(out, ": detrand: ") {
		t.Errorf("plain output lacks file:line: analyzer: message form:\n%s", out)
	}
}

func TestAnalyzerSubset(t *testing.T) {
	t.Chdir("testdata/mod")
	var stdout, stderr strings.Builder
	// mapiter alone has nothing to say about the fixture module.
	if code := run([]string{"-analyzers", "mapiter", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if code := run([]string{"-analyzers", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit code = %d, want 2", code)
	}
}

// writeModule materializes a tiny module under a temp dir and chdirs into
// it, so runs exercise the same FindModule/Loader path as a real invocation.
func writeModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module m\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
}

func TestStrictRejectsAnalyzerSubset(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-strict", "-analyzers", "detrand", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(stderr.String(), "-strict requires the full analyzer set") {
		t.Errorf("stderr %q should explain the -strict/-analyzers conflict", stderr.String())
	}
}

// A suppression that no longer suppresses anything is invisible to a plain
// run but an error under -strict, reported as the pseudo-analyzer "hglint"
// so the JSON artifact attributes it to the directive machinery itself.
func TestStrictFlagsStaleSuppression(t *testing.T) {
	writeModule(t, map[string]string{
		"internal/util/util.go": `package util

// Nothing on the next line trips detrand anymore; the directive is stale.
//hglint:ignore detrand historical: this once wrapped a time.Now call
func Twice(n int) int { return 2 * n }
`,
	})

	var stdout, stderr strings.Builder
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("plain run exit = %d, want 0 (stale directives are not plain findings); stderr: %s", code, stderr.String())
	}

	stdout.Reset()
	code := run([]string{"-strict", "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-strict exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(stdout.String()), &findings); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want exactly the stale directive", findings)
	}
	f := findings[0]
	if f.Analyzer != analysis.DirectiveAnalyzer {
		t.Errorf("analyzer = %q, want %q", f.Analyzer, analysis.DirectiveAnalyzer)
	}
	if f.File != "internal/util/util.go" {
		t.Errorf("file = %q, want internal/util/util.go", f.File)
	}
	if !strings.Contains(f.Message, "stale suppression") || !strings.Contains(f.Message, "detrand") {
		t.Errorf("message %q should call out the stale detrand suppression", f.Message)
	}
}

// -fix applies a mechanical suggested fix (here sharedguard's lock/defer
// wrap), reports what it changed on stderr, and re-analyzes so the finding
// disappears from the same invocation; a following plain run stays clean.
func TestFixRoundTrip(t *testing.T) {
	writeModule(t, map[string]string{
		"internal/service/svc.go": `package service

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //hglint:guardedby mu
}

func (c *counter) bump() {
	c.n++
}
`,
	})

	var stdout, stderr strings.Builder
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("pre-fix exit = %d, want 1; stderr: %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-fix", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-fix exit = %d, want 0 once the fix lands; stdout: %s stderr: %s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "fixed") {
		t.Errorf("-fix stderr %q should name the rewritten file", stderr.String())
	}
	src, err := os.ReadFile(filepath.FromSlash("internal/service/svc.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "c.mu.Lock()") || !strings.Contains(string(src), "defer c.mu.Unlock()") {
		t.Errorf("fixed source lacks the lock/defer wrap:\n%s", src)
	}

	stdout.Reset()
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("post-fix exit = %d, want 0; stdout: %s", code, stdout.String())
	}
}

func TestList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output lacks analyzer %s", a.Name)
		}
	}
}
