package main

import (
	"encoding/json"
	"strings"
	"testing"

	"hgpart/internal/lint"
	"hgpart/internal/lint/analysis"
)

func TestJSONOutput(t *testing.T) {
	t.Chdir("testdata/mod")
	var stdout, stderr strings.Builder
	code := run([]string{"-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr: %s", code, stderr.String())
	}
	var findings []analysis.Finding
	if err := json.Unmarshal([]byte(stdout.String()), &findings); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded")
	}
	f := findings[0]
	if f.Analyzer != "detrand" {
		t.Errorf("finding analyzer = %q, want detrand", f.Analyzer)
	}
	if f.File != "internal/kway/kway.go" {
		t.Errorf("finding file = %q, want internal/kway/kway.go", f.File)
	}
	if f.Line <= 0 || f.Col <= 0 {
		t.Errorf("finding position %d:%d not positive", f.Line, f.Col)
	}
	if !strings.Contains(f.Message, "math/rand") {
		t.Errorf("finding message %q does not mention math/rand", f.Message)
	}
}

func TestJSONEmptyOnCleanPackage(t *testing.T) {
	t.Chdir("testdata/mod")
	var stdout, stderr strings.Builder
	code := run([]string{"-json", "internal/util"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean run output = %q, want []", got)
	}
}

func TestPlainOutput(t *testing.T) {
	t.Chdir("testdata/mod")
	var stdout, stderr strings.Builder
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "internal/kway/kway.go:") || !strings.Contains(out, ": detrand: ") {
		t.Errorf("plain output lacks file:line: analyzer: message form:\n%s", out)
	}
}

func TestAnalyzerSubset(t *testing.T) {
	t.Chdir("testdata/mod")
	var stdout, stderr strings.Builder
	// mapiter alone has nothing to say about the fixture module.
	if code := run([]string{"-analyzers", "mapiter", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if code := run([]string{"-analyzers", "nosuch", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("unknown analyzer: exit code = %d, want 2", code)
	}
}

func TestList(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output lacks analyzer %s", a.Name)
		}
	}
}
