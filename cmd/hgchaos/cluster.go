package main

// Cluster chaos scenarios: boot a coordinator plus a small worker fleet on
// one machine and prove that node-level faults cannot change a single
// output byte. The determinism contract under test: for a given (instance,
// config, seed) the report bytes are identical across 1-, 2- and 3-worker
// topologies, across a worker SIGKILLed mid-job and resumed on a survivor
// from the shared v2 CRC journal, across a coordinator SIGKILLed mid-route
// and restarted, and across full degradation to local compute when every
// worker address is unreachable.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hgpart/internal/chaos"
)

// clusterScenarioNames lists the cluster scenarios run() dispatches here.
var clusterScenarioNames = []string{
	"cluster-topology", "cluster-worker-kill", "cluster-coord-kill", "cluster-degrade",
}

func runClusterScenario(ctx context.Context, opt options, name, req string, baseline []byte) int {
	switch name {
	case "cluster-topology":
		return clusterTopology(ctx, opt, req, baseline)
	case "cluster-worker-kill":
		return clusterWorkerKill(ctx, opt, req, baseline)
	case "cluster-coord-kill":
		return clusterCoordKill(ctx, opt, req, baseline)
	case "cluster-degrade":
		return clusterDegrade(ctx, opt, req, baseline)
	default:
		fmt.Fprintf(opt.out, "hgchaos: unknown cluster scenario %q (have %s)\n",
			name, strings.Join(clusterScenarioNames, ", "))
		return 2
	}
}

// cluster is a coordinator plus its worker fleet under harness control.
type cluster struct {
	workers     []*daemon
	workerAddrs []string
	coord       *daemon
}

func (c *cluster) stopAll() {
	if c.coord != nil {
		c.coord.stop()
	}
	for _, w := range c.workers {
		if w != nil {
			w.stop()
		}
	}
}

// freeAddrs reserves n distinct loopback ports by binding and releasing
// them; workers need their addresses known up front so each can be started
// with -peers naming its siblings.
func freeAddrs(n int) ([]string, error) {
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, nil
}

// startCluster boots n workers (peered with each other, journaling to the
// shared cpDir) and a coordinator routing to all of them.
func startCluster(ctx context.Context, opt options, name string, n int, cpDir string,
	workerExtra []string) (*cluster, error) {
	addrs, err := freeAddrs(n)
	if err != nil {
		return nil, err
	}
	c := &cluster{workerAddrs: addrs}
	for i, addr := range addrs {
		var peers []string
		for j, p := range addrs {
			if j != i {
				peers = append(peers, p)
			}
		}
		args := []string{"-addr", addr, "-checkpoint-dir", cpDir}
		if len(peers) > 0 {
			args = append(args, "-peers", strings.Join(peers, ","))
		}
		args = append(args, workerExtra...)
		w, err := startDaemon(ctx, opt, fmt.Sprintf("%s-w%d", name, i), args)
		if err != nil {
			c.stopAll()
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		c.workers = append(c.workers, w)
	}
	coord, err := startDaemon(ctx, opt, name+"-coord", []string{
		"-cluster-workers", strings.Join(addrs, ","),
		"-heartbeat-interval", "100ms",
		"-checkpoint-dir", cpDir,
	})
	if err != nil {
		c.stopAll()
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	c.coord = coord
	return c, nil
}

// clusterTopology proves placement-independence: 1-, 2- and 3-worker
// clusters all reproduce the single-node baseline byte for byte, and a
// repeated request is served from the coordinator's cache.
func clusterTopology(ctx context.Context, opt options, req string, baseline []byte) int {
	for n := 1; n <= 3; n++ {
		cpDir := filepath.Join(opt.workdir, fmt.Sprintf("cluster-topology-%d", n), "checkpoints")
		if err := os.MkdirAll(cpDir, 0o755); err != nil {
			fmt.Fprintf(opt.out, "hgchaos: cluster-topology: %v\n", err)
			return 2
		}
		c, err := startCluster(ctx, opt, fmt.Sprintf("cluster-topology-%d", n), n, cpDir, nil)
		if err != nil {
			fmt.Fprintf(opt.out, "hgchaos: cluster-topology: %d workers: %v\n", n, err)
			return 2
		}
		body, _, err := submitSync(ctx, c.coord.addr, req, opt.seed)
		if err != nil {
			fmt.Fprintf(opt.out, "hgchaos: cluster-topology: %d workers: %v\n", n, err)
			c.stopAll()
			return 1
		}
		if !bytes.Equal(body, baseline) {
			fmt.Fprintf(opt.out, "hgchaos: cluster-topology: %d-worker report differs from baseline (%d vs %d bytes)\n",
				n, len(body), len(baseline))
			c.stopAll()
			return 1
		}
		body2, disp, err := submitSyncDisposition(ctx, c.coord.addr, req, opt.seed)
		if err != nil || !bytes.Equal(body2, baseline) || disp != "hit" {
			fmt.Fprintf(opt.out, "hgchaos: cluster-topology: repeat request not a byte-identical cache hit (disposition %q, err %v)\n", disp, err)
			c.stopAll()
			return 1
		}
		fmt.Fprintf(opt.out, "hgchaos: cluster-topology: %d worker(s) byte-identical\n", n)
		c.stopAll()
	}
	return 0
}

// clusterWorkerKill is the core failover proof: SIGKILL the worker that is
// computing the job mid-run; the coordinator must fail the job over to the
// survivor, which resumes from the shared journal (resumed >= 1) and
// produces bytes identical to the uninterrupted single-node baseline.
func clusterWorkerKill(ctx context.Context, opt options, req string, baseline []byte) int {
	const rearms = 3
	for attempt := 0; attempt < rearms; attempt++ {
		rc, rearm := clusterWorkerKillOnce(ctx, opt, req, baseline, attempt)
		if !rearm {
			return rc
		}
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: job finished before the kill landed; re-arming\n")
	}
	fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: could not catch the job mid-run after %d attempts\n", rearms)
	return 1
}

func clusterWorkerKillOnce(ctx context.Context, opt options, req string, baseline []byte, attempt int) (int, bool) {
	name := fmt.Sprintf("cluster-worker-kill-%d", attempt)
	cpDir := filepath.Join(opt.workdir, name, "checkpoints")
	if err := os.MkdirAll(cpDir, 0o755); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: %v\n", err)
		return 2, false
	}
	// The latency spec stretches every journal write so the job is reliably
	// still mid-run when the kill lands (same trick as mid-drain).
	c, err := startCluster(ctx, opt, name, 2, cpDir, []string{"-chaos", "write:.jsonl:p1:latency=150ms"})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: %v\n", err)
		return 2, false
	}
	defer c.stopAll()

	cjID, err := submitAsyncID(ctx, c.coord.addr, req)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: submit: %v\n", err)
		return 2, false
	}

	// Find the worker actually executing the job, and wait until it has >= 2
	// starts done — by then >= 1 journal record is durable (records are
	// written and fsynced by the same goroutine that counts completions, so
	// completion k acknowledges record k-1).
	victim := -1
	for victim < 0 {
		if ctx.Err() != nil {
			fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: %v\n", ctx.Err())
			return 2, false
		}
		if st, err := jobStatus(ctx, c.coord.addr, cjID); err == nil && (st.State == "done" || st.State == "failed") {
			return 0, true // too fast; re-arm
		}
		for i, w := range c.workers {
			st, err := runningJob(ctx, w.addr)
			if err == nil && st.Completed >= 2 {
				victim = i
				break
			}
		}
		if victim < 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}

	_ = c.workers[victim].cmd.Process.Kill()
	if err := c.workers[victim].waitKilled(ctx); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: %v\n", err)
		return 1, false
	}
	fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: killed worker %s mid-job\n", c.workerAddrs[victim])

	// The coordinator must finish the job on the survivor.
	var st *jobStatusDoc
	for {
		st, err = jobStatus(ctx, c.coord.addr, cjID)
		if err != nil {
			fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: job status: %v\n", err)
			return 1, false
		}
		if st.State == "done" || st.State == "failed" {
			break
		}
		if ctx.Err() != nil {
			fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: job never finished: %v\n", ctx.Err())
			return 1, false
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != "done" {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: job failed after failover: %s\n", st.Error)
		return 1, false
	}
	if st.Worker == c.workerAddrs[victim] {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: job claims to have finished on the dead worker %s\n", st.Worker)
		return 1, false
	}

	// Byte-identity: the coordinator's cached bytes are the survivor's
	// response verbatim.
	body, disp, err := submitSyncDisposition(ctx, c.coord.addr, req, opt.seed)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: refetch: %v\n", err)
		return 1, false
	}
	if disp != "hit" {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: refetch was %q, want coordinator cache hit\n", disp)
		return 1, false
	}
	if !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: failover report differs from baseline (%d vs %d bytes)\n",
			len(body), len(baseline))
		return 1, false
	}

	// The survivor must have resumed journaled starts, not recomputed them.
	if st.Worker == "" || st.RemoteJob == "" {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: job status carries no worker/remote_job\n")
		return 1, false
	}
	sst, err := jobStatus(ctx, st.Worker, st.RemoteJob)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: survivor job status: %v\n", err)
		return 1, false
	}
	if sst.Resumed < 1 {
		fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: survivor recomputed everything (resumed=0); the journal handoff did nothing\n")
		return 1, false
	}
	fmt.Fprintf(opt.out, "hgchaos: cluster-worker-kill: survivor %s resumed %d journaled start(s)\n",
		st.Worker, sst.Resumed)
	return 0, false
}

// clusterCoordKill SIGKILLs the coordinator while a job is mid-route on a
// worker, then boots a fresh coordinator over the same fleet; the resubmit
// must coalesce onto the worker's still-running computation and reproduce
// the baseline bytes.
func clusterCoordKill(ctx context.Context, opt options, req string, baseline []byte) int {
	name := "cluster-coord-kill"
	cpDir := filepath.Join(opt.workdir, name, "checkpoints")
	if err := os.MkdirAll(cpDir, 0o755); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 2
	}
	c, err := startCluster(ctx, opt, name, 2, cpDir, []string{"-chaos", "write:.jsonl:p1:latency=150ms"})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 2
	}
	defer c.stopAll()

	if _, err := submitAsyncID(ctx, c.coord.addr, req); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: submit: %v\n", name, err)
		return 2
	}
	// Wait until a worker is visibly executing the routed job, then kill the
	// coordinator mid-route.
	for {
		if ctx.Err() != nil {
			fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, ctx.Err())
			return 2
		}
		running := false
		for _, w := range c.workers {
			if st, err := runningJob(ctx, w.addr); err == nil && st.Completed >= 1 {
				running = true
				break
			}
		}
		if running {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = c.coord.cmd.Process.Kill()
	if err := c.coord.waitKilled(ctx); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: killed coordinator mid-route\n", name)

	coord2, err := startDaemon(ctx, opt, name+"-coord2", []string{
		"-cluster-workers", strings.Join(c.workerAddrs, ","),
		"-heartbeat-interval", "100ms",
		"-checkpoint-dir", cpDir,
	})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: restart coordinator: %v\n", name, err)
		return 2
	}
	c.coord = coord2
	body, _, err := submitSync(ctx, coord2.addr, req, opt.seed)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: resubmit: %v\n", name, err)
		return 1
	}
	if !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: post-restart report differs from baseline (%d vs %d bytes)\n",
			name, len(body), len(baseline))
		return 1
	}
	return 0
}

// clusterDegrade points a coordinator at a fleet that does not exist: the
// request must still succeed (single-node degradation, no 5xx storm) with
// baseline-identical bytes, and the cluster view must show zero healthy
// workers with a local fallback recorded.
func clusterDegrade(ctx context.Context, opt options, req string, baseline []byte) int {
	name := "cluster-degrade"
	cpDir := filepath.Join(opt.workdir, name, "checkpoints")
	if err := os.MkdirAll(cpDir, 0o755); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 2
	}
	dead, err := freeAddrs(2)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 2
	}
	coord, err := startDaemon(ctx, opt, name+"-coord", []string{
		"-cluster-workers", strings.Join(dead, ","),
		"-heartbeat-interval", "100ms",
		"-checkpoint-dir", cpDir,
	})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 2
	}
	defer coord.stop()

	body, disp, err := submitSyncDisposition(ctx, coord.addr, req, opt.seed)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: request against a dead fleet failed: %v\n", name, err)
		return 1
	}
	if !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: degraded report differs from baseline (%d vs %d bytes)\n",
			name, len(body), len(baseline))
		return 1
	}
	if disp != "local-fallback" {
		fmt.Fprintf(opt.out, "hgchaos: %s: disposition %q, want local-fallback\n", name, disp)
		return 1
	}
	var cs struct {
		Healthy        int   `json:"healthy"`
		LocalFallbacks int64 `json:"local_fallbacks"`
	}
	if err := getJSON(ctx, "http://"+coord.addr+"/v1/cluster", &cs); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: cluster status: %v\n", name, err)
		return 1
	}
	if cs.Healthy != 0 || cs.LocalFallbacks < 1 {
		fmt.Fprintf(opt.out, "hgchaos: %s: cluster view healthy=%d local_fallbacks=%d, want 0 and >=1\n",
			name, cs.Healthy, cs.LocalFallbacks)
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: dead fleet degraded to a local compute, bytes identical\n", name)
	return 0
}

// jobStatusDoc is the subset of the job-status document the scenarios read.
type jobStatusDoc struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Completed int    `json:"completed"`
	Resumed   int    `json:"resumed"`
	Worker    string `json:"worker"`
	RemoteJob string `json:"remote_job"`
	Error     string `json:"error"`
}

func jobStatus(ctx context.Context, addr, id string) (*jobStatusDoc, error) {
	var st jobStatusDoc
	if err := getJSON(ctx, "http://"+addr+"/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// runningJob returns the first running job in a worker's job list, or an
// error when none is running.
func runningJob(ctx context.Context, addr string) (*jobStatusDoc, error) {
	var jobs []jobStatusDoc
	if err := getJSON(ctx, "http://"+addr+"/v1/jobs", &jobs); err != nil {
		return nil, err
	}
	for i := range jobs {
		if jobs[i].State == "running" {
			return &jobs[i], nil
		}
	}
	return nil, fmt.Errorf("no running job on %s", addr)
}

func getJSON(ctx context.Context, url string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// submitAsyncID fires the workload asynchronously and returns the job id.
func submitAsyncID(ctx context.Context, addr, req string) (string, error) {
	async := strings.TrimSuffix(strings.TrimSpace(req), "}") + `,"async":true}`
	resp, err := httpPost(ctx, "http://"+addr+"/v1/partition", async)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("async submit: status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	var doc struct {
		Job string `json:"job"`
	}
	if err := json.Unmarshal(b, &doc); err != nil || doc.Job == "" {
		return "", fmt.Errorf("async submit: no job id in %s", bytes.TrimSpace(b))
	}
	return doc.Job, nil
}

// submitSyncDisposition is submitSync but also returns the X-Hgserved-Cache
// header, so scenarios can assert HOW the bytes were produced (hit,
// local-fallback, ...), not just what they are.
func submitSyncDisposition(ctx context.Context, addr, req string, seed uint64) (body []byte, disposition string, err error) {
	retry := chaos.Retry{MaxAttempts: 8, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Seed: seed}
	err = retry.Do(ctx, func() (time.Duration, bool, error) {
		resp, herr := httpPost(ctx, "http://"+addr+"/v1/partition", req)
		if herr != nil {
			return 0, true, herr
		}
		defer resp.Body.Close()
		b, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return 0, true, rerr
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			after, _ := chaos.RetryAfterHeader(resp.Header.Get("Retry-After"))
			return after, true, fmt.Errorf("503: %s", bytes.TrimSpace(b))
		}
		if resp.StatusCode != http.StatusOK {
			return 0, false, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
		}
		body = b
		disposition = resp.Header.Get("X-Hgserved-Cache")
		return 0, false, nil
	})
	return body, disposition, err
}
