package main

// TestClusterSmoke is the `make cluster-smoke` CI gate: build hgserved with
// the race detector, boot coordinator + worker clusters, and run the
// cluster chaos scenarios — topology byte-identity (1/2/3 workers), worker
// SIGKILL mid-job with journal-backed failover to a survivor, coordinator
// SIGKILL mid-route with restart, and full degradation to local compute
// against a dead fleet. Every path must reproduce the uninterrupted
// single-node baseline byte for byte.

import (
	"bytes"
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke boots real daemon fleets; skipped in -short")
	}
	workdir := t.TempDir()
	bin := filepath.Join(workdir, "hgserved")
	// -race on the daemon itself: the cluster code paths (dispatch,
	// failover, stealing, peering) run under the detector, per the CI gate.
	build := exec.Command("go", "build", "-race", "-o", bin, "hgpart/cmd/hgserved")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build hgserved -race: %v\n%s", err, out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var out bytes.Buffer
	rc := run(ctx, options{
		bin:       bin,
		seed:      7,
		starts:    6,
		scale:     0.12,
		scenarios: clusterScenarioNames,
		workdir:   filepath.Join(workdir, "harness"),
		out:       &out,
	})
	t.Logf("harness output:\n%s", out.String())
	if rc != 0 {
		t.Fatalf("hgchaos exit code %d, want 0", rc)
	}
	for _, want := range []string{
		"cluster-topology", "cluster-worker-kill", "cluster-coord-kill", "cluster-degrade",
		"resumed", "byte-identical",
	} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("harness output lacks %q", want)
		}
	}
}
