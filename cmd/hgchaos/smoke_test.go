package main

// TestChaosSmoke is the `make chaos-smoke` CI gate: build the real hgserved
// binary, then run the full kill/restart harness in-process against it. It
// exercises every scenario — SIGKILL mid-record-write (torn tail +
// quarantine), mid-fsync, and mid-drain — and holds the byte-identity
// guarantee: a recovered report equals the uninterrupted one.

import (
	"bytes"
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos smoke boots real daemons; skipped in -short")
	}
	workdir := t.TempDir()
	bin := filepath.Join(workdir, "hgserved")
	build := exec.Command("go", "build", "-o", bin, "hgpart/cmd/hgserved")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build hgserved: %v\n%s", err, out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var out bytes.Buffer
	rc := run(ctx, options{
		bin:       bin,
		seed:      7,
		starts:    6,
		scale:     0.2,
		scenarios: []string{"mid-record", "mid-fsync", "mid-drain"},
		workdir:   filepath.Join(workdir, "harness"),
		out:       &out,
	})
	t.Logf("harness output:\n%s", out.String())
	if rc != 0 {
		t.Fatalf("hgchaos exit code %d, want 0", rc)
	}
	for _, want := range []string{"mid-record", "mid-fsync", "mid-drain", "byte-identical"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("harness output lacks %q", want)
		}
	}
}
