package main

// Portfolio chaos scenario: the adaptive portfolio scheduler's outcome store
// is strictly advisory, so mode=portfolio reports must be byte-identical
// across a repeat (cache hit), a daemon restart sharing the checkpoint dir
// (outcome store warm, result cache cold — the store is predicting, but a
// prediction must not move a byte), a storeless daemon (no checkpoint dir at
// all), and 1/2/3-worker cluster topologies where coordinator and workers
// share one store through O_APPEND record framing.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
)

// runPortfolioScenario executes the portfolio determinism proof. It computes
// its own baseline (the shared flat-engine baseline does not exercise the
// racing path). Returns 0 pass, 1 assertion failure, 2 environment failure.
func runPortfolioScenario(ctx context.Context, opt options) int {
	const name = "portfolio"
	preq := fmt.Sprintf(`{"benchmark":"ibm01","scale":%g,"mode":"portfolio","starts":%d,"seed":%d}`,
		opt.scale, opt.starts, opt.seed)

	// Phase 1: cold daemon with a checkpoint dir. The first answer is the
	// scenario baseline; the repeat must be a byte-identical cache hit.
	cpDir := filepath.Join(opt.workdir, name, "checkpoints")
	if err := os.MkdirAll(cpDir, 0o755); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 2
	}
	d1, err := startDaemon(ctx, opt, name+"-cold", []string{"-checkpoint-dir", cpDir})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: cold daemon: %v\n", name, err)
		return 2
	}
	baseline, _, err := submitSync(ctx, d1.addr, preq, opt.seed)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: cold request: %v\n", name, err)
		d1.stop()
		return 2
	}
	repeat, disp, err := submitSyncDisposition(ctx, d1.addr, preq, opt.seed)
	if err != nil || disp != "hit" || !bytes.Equal(repeat, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: repeat not a byte-identical cache hit (disposition %q, err %v)\n",
			name, disp, err)
		d1.stop()
		return 1
	}
	d1.stop()
	// The warm-store phase below is only meaningful if the race actually
	// persisted outcomes; an empty store would make it a silent no-op.
	if fi, err := os.Stat(filepath.Join(cpDir, "portfolio.store")); err != nil || fi.Size() == 0 {
		fmt.Fprintf(opt.out, "hgchaos: %s: race left no outcome store in %s (err %v)\n", name, cpDir, err)
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: baseline report: %d bytes, outcome store persisted\n",
		name, len(baseline))

	// Phase 2: fresh daemon on the same checkpoint dir. The outcome store is
	// warm (it will predict the winner) but the result cache is cold, so the
	// whole race+commit recomputes — under advisement — and must not move a
	// byte. A store that influenced selection would poison every cache keyed
	// on these bytes.
	d2, err := startDaemon(ctx, opt, name+"-warm", []string{"-checkpoint-dir", cpDir})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: warm-store daemon: %v\n", name, err)
		return 2
	}
	body, disp, err := submitSyncDisposition(ctx, d2.addr, preq, opt.seed)
	d2.stop()
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: warm-store request: %v\n", name, err)
		return 1
	}
	if disp != "miss" {
		fmt.Fprintf(opt.out, "hgchaos: %s: warm-store disposition %q, want miss (cold cache)\n", name, disp)
		return 1
	}
	if !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: warm-store report differs from baseline (%d vs %d bytes)\n",
			name, len(body), len(baseline))
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: warm store recomputed byte-identical bytes\n", name)

	// Phase 3: storeless daemon — no checkpoint dir, so no store exists at
	// all. Identical bytes close the loop: cold store == warm store == none.
	d3, err := startDaemon(ctx, opt, name+"-storeless", nil)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: storeless daemon: %v\n", name, err)
		return 2
	}
	body, _, err = submitSync(ctx, d3.addr, preq, opt.seed)
	d3.stop()
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: storeless request: %v\n", name, err)
		return 1
	}
	if !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: storeless report differs from baseline (%d vs %d bytes)\n",
			name, len(body), len(baseline))
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: storeless daemon byte-identical\n", name)

	// Phase 4: 1-, 2- and 3-worker clusters. Coordinator and workers share
	// one outcome store on the cluster checkpoint dir (O_APPEND record
	// framing); wherever the job lands, the bytes must match the single-node
	// baseline.
	for n := 1; n <= 3; n++ {
		clusterDir := filepath.Join(opt.workdir, fmt.Sprintf("%s-cluster-%d", name, n), "checkpoints")
		if err := os.MkdirAll(clusterDir, 0o755); err != nil {
			fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
			return 2
		}
		c, err := startCluster(ctx, opt, fmt.Sprintf("%s-cluster-%d", name, n), n, clusterDir, nil)
		if err != nil {
			fmt.Fprintf(opt.out, "hgchaos: %s: %d workers: %v\n", name, n, err)
			return 2
		}
		body, _, err := submitSync(ctx, c.coord.addr, preq, opt.seed)
		c.stopAll()
		if err != nil {
			fmt.Fprintf(opt.out, "hgchaos: %s: %d workers: %v\n", name, n, err)
			return 1
		}
		if !bytes.Equal(body, baseline) {
			fmt.Fprintf(opt.out, "hgchaos: %s: %d-worker report differs from baseline (%d vs %d bytes)\n",
				name, n, len(body), len(baseline))
			return 1
		}
		fmt.Fprintf(opt.out, "hgchaos: %s: %d worker(s) byte-identical\n", name, n)
	}
	return 0
}
