package main

// TestPortfolioChaosSmoke is part of the `make portfolio-smoke` CI gate:
// build hgserved with the race detector and run the portfolio scenario —
// mode=portfolio reports must be byte-identical across a cache-hit repeat,
// a daemon restart with a warm advisory outcome store, a storeless daemon,
// and 1/2/3-worker cluster topologies sharing one store.

import (
	"bytes"
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestPortfolioChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("portfolio smoke boots real daemon fleets; skipped in -short")
	}
	workdir := t.TempDir()
	bin := filepath.Join(workdir, "hgserved")
	build := exec.Command("go", "build", "-race", "-o", bin, "hgpart/cmd/hgserved")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build hgserved -race: %v\n%s", err, out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var out bytes.Buffer
	rc := run(ctx, options{
		bin:       bin,
		seed:      7,
		starts:    4,
		scale:     0.1,
		scenarios: []string{"portfolio"},
		workdir:   filepath.Join(workdir, "harness"),
		out:       &out,
	})
	t.Logf("harness output:\n%s", out.String())
	if rc != 0 {
		t.Fatalf("hgchaos exit code %d, want 0", rc)
	}
	for _, want := range []string{
		"outcome store persisted",
		"warm store recomputed byte-identical bytes",
		"storeless daemon byte-identical",
		"3 worker(s) byte-identical",
		"portfolio  PASS",
	} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("harness output lacks %q", want)
		}
	}
}
