package main

// Network chaos scenarios (DESIGN.md §16): boot real coordinator/worker
// fleets with hgserved's -net-chaos transport armed and prove that degraded
// networks cannot change a single output byte. Partitions open circuit
// breakers and reroute, slow peers demote to local computes, bit-corrupted
// RPC responses are caught by the sha256 envelope and retried without ever
// poisoning a cache, and a flapping worker walks its breaker
// closed → open → closed visibly, deterministically.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// netScenarioNames lists the network chaos scenarios run() dispatches here.
var netScenarioNames = []string{
	"net-partition", "slow-peer", "corrupt-response", "flapping-worker",
}

func runNetScenario(ctx context.Context, opt options, name, req string, baseline []byte) int {
	switch name {
	case "net-partition":
		return netPartition(ctx, opt, req, baseline)
	case "slow-peer":
		return slowPeer(ctx, opt, req, baseline)
	case "corrupt-response":
		return corruptResponse(ctx, opt, req, baseline)
	case "flapping-worker":
		return flappingWorker(ctx, opt, req, baseline)
	default:
		fmt.Fprintf(opt.out, "hgchaos: unknown net scenario %q (have %s)\n",
			name, strings.Join(netScenarioNames, ", "))
		return 2
	}
}

// portOf extracts the port from a host:port address; the ":" spec separator
// means net rules pin a port with the "PORT/" substring idiom instead of a
// literal host:port.
func portOf(addr string) string {
	if i := strings.LastIndex(addr, ":"); i >= 0 {
		return addr[i+1:]
	}
	return addr
}

// fetchMetrics scrapes one daemon's /metrics exposition.
func fetchMetrics(ctx context.Context, addr string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// metricValue reads one exposition line's integer value; 0 when the series
// is absent.
func metricValue(metrics, line string) int64 {
	for _, l := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(l, line+" ") {
			var v int64
			fmt.Sscanf(strings.TrimPrefix(l, line+" "), "%d", &v)
			return v
		}
	}
	return 0
}

// clusterDoc is the subset of GET /v1/cluster the net scenarios read.
type clusterDoc struct {
	Healthy int `json:"healthy"`
	Workers []struct {
		Addr    string `json:"addr"`
		Breaker string `json:"breaker"`
	} `json:"workers"`
}

// breakerOf returns a worker's breaker state from the coordinator's view.
func breakerOf(ctx context.Context, coordAddr, workerAddr string) (string, error) {
	var doc clusterDoc
	if err := getJSON(ctx, "http://"+coordAddr+"/v1/cluster", &doc); err != nil {
		return "", err
	}
	for _, w := range doc.Workers {
		if w.Addr == workerAddr {
			return w.Breaker, nil
		}
	}
	return "", fmt.Errorf("worker %s not in cluster view", workerAddr)
}

// waitBreakerState polls the coordinator until a worker's breaker reports
// want, bounded by the harness context.
func waitBreakerState(ctx context.Context, coordAddr, workerAddr, want string) error {
	for {
		if ctx.Err() != nil {
			return fmt.Errorf("worker %s never reached breaker %q: %w", workerAddr, want, ctx.Err())
		}
		got, err := breakerOf(ctx, coordAddr, workerAddr)
		if err == nil && got == want {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// netPartition blackholes one worker's address at the coordinator: every
// dispatch and heartbeat toward it hangs until its deadline. The breaker
// must open, the job must land on the reachable worker with baseline bytes,
// and the injected blackholes must be visible in /metrics.
func netPartition(ctx context.Context, opt options, req string, baseline []byte) int {
	name := "net-partition"
	cpDir := filepath.Join(opt.workdir, name, "checkpoints")
	if err := os.MkdirAll(cpDir, 0o755); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 2
	}
	addrs, err := freeAddrs(2)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 2
	}
	var workers []*daemon
	for i, addr := range addrs {
		w, werr := startDaemon(ctx, opt, fmt.Sprintf("%s-w%d", name, i),
			[]string{"-addr", addr, "-checkpoint-dir", cpDir})
		if werr != nil {
			fmt.Fprintf(opt.out, "hgchaos: %s: worker %d: %v\n", name, i, werr)
			for _, s := range workers {
				s.stop()
			}
			return 2
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			w.stop()
		}
	}()

	// Partition worker 0: the "PORT/" idiom matches every URL sent to it.
	spec := fmt.Sprintf("net:%s/:p1:blackhole", portOf(addrs[0]))
	coord, err := startDaemon(ctx, opt, name+"-coord", []string{
		"-cluster-workers", strings.Join(addrs, ","),
		"-heartbeat-interval", "100ms",
		"-dispatch-deadline", "1s",
		"-checkpoint-dir", cpDir,
		"-net-chaos", spec,
		"-chaos-seed", fmt.Sprint(opt.seed),
	})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: coordinator: %v\n", name, err)
		return 2
	}
	defer coord.stop()

	// Heartbeats into the blackhole time out; the breaker must open.
	if err := waitBreakerState(ctx, coord.addr, addrs[0], "open"); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 1
	}
	body, _, err := submitSync(ctx, coord.addr, req, opt.seed)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: submit across the partition: %v\n", name, err)
		return 1
	}
	if !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: partitioned-cluster report differs from baseline (%d vs %d bytes)\n",
			name, len(body), len(baseline))
		return 1
	}
	var doc clusterDoc
	if err := getJSON(ctx, "http://"+coord.addr+"/v1/cluster", &doc); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: cluster status: %v\n", name, err)
		return 1
	}
	if doc.Healthy != 1 {
		fmt.Fprintf(opt.out, "hgchaos: %s: healthy=%d, want exactly the reachable worker\n", name, doc.Healthy)
		return 1
	}
	metrics, err := fetchMetrics(ctx, coord.addr)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: metrics: %v\n", name, err)
		return 1
	}
	if metricValue(metrics, `hgserved_net_faults_injected_total{fault="blackhole"}`) < 1 {
		fmt.Fprintf(opt.out, "hgchaos: %s: no blackhole faults counted in /metrics\n", name)
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: breaker open on the partitioned worker, bytes byte-identical via the survivor\n", name)
	return 0
}

// slowPeer injects 500ms of latency into every peer cache probe on a worker
// whose -peer-timeout is 150ms: the probe must time out, the worker must
// compute locally (disposition "miss", never an error), and the bytes must
// match the baseline.
func slowPeer(ctx context.Context, opt options, req string, baseline []byte) int {
	name := "slow-peer"
	a, err := startDaemon(ctx, opt, name+"-a", nil)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: peer A: %v\n", name, err)
		return 2
	}
	defer a.stop()
	// Prime A's cache so a timely probe WOULD hit.
	if body, _, err := submitSync(ctx, a.addr, req, opt.seed); err != nil || !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: prime peer A: err=%v identical=%v\n", name, err, bytes.Equal(body, baseline))
		return 2
	}

	b, err := startDaemon(ctx, opt, name+"-b", []string{
		"-peers", a.addr,
		"-peer-timeout", "150ms",
		"-net-chaos", "net:internal:p1:latency=500ms",
		"-chaos-seed", fmt.Sprint(opt.seed),
	})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: worker B: %v\n", name, err)
		return 2
	}
	defer b.stop()

	begin := time.Now()
	body, disp, err := submitSyncDisposition(ctx, b.addr, req, opt.seed)
	elapsed := time.Since(begin)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: submit: %v\n", name, err)
		return 1
	}
	if disp != "miss" {
		fmt.Fprintf(opt.out, "hgchaos: %s: disposition %q, want miss (slow peer must demote, not error)\n", name, disp)
		return 1
	}
	if !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: locally computed report differs from baseline (%d vs %d bytes)\n",
			name, len(body), len(baseline))
		return 1
	}
	// The probe is bounded by -peer-timeout, not by the injected latency; a
	// generous ceiling still proves the request never waited out 500ms floors.
	if elapsed > 30*time.Second {
		fmt.Fprintf(opt.out, "hgchaos: %s: request took %v; the peer timeout did not bound the probe\n", name, elapsed)
		return 1
	}
	metrics, err := fetchMetrics(ctx, b.addr)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: metrics: %v\n", name, err)
		return 1
	}
	if metricValue(metrics, `hgserved_net_faults_injected_total{fault="latency"}`) < 1 {
		fmt.Fprintf(opt.out, "hgchaos: %s: no latency faults counted in /metrics\n", name)
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: timed-out probe degraded to a local compute, bytes byte-identical\n", name)
	return 0
}

// corruptResponse flips bits in internal response bodies and proves the
// sha256 envelope catches them on both RPC paths: a corrupted dispatch
// response is retried to clean bytes and never cached, and a corrupted peer
// cache response demotes to a local compute.
func corruptResponse(ctx context.Context, opt options, req string, baseline []byte) int {
	name := "corrupt-response"
	cpDir := filepath.Join(opt.workdir, name, "checkpoints")
	if err := os.MkdirAll(cpDir, 0o755); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 2
	}

	// Dispatch path: the first /v1/partition response the coordinator reads
	// is bit-corrupted; the retry must land clean.
	worker, err := startDaemon(ctx, opt, name+"-w", []string{"-checkpoint-dir", cpDir})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: worker: %v\n", name, err)
		return 2
	}
	defer worker.stop()
	coord, err := startDaemon(ctx, opt, name+"-coord", []string{
		"-cluster-workers", worker.addr,
		"-heartbeat-interval", "100ms",
		"-dispatch-retries", "3",
		"-checkpoint-dir", cpDir,
		"-net-chaos", "net:/v1/partition:1:corrupt",
		"-chaos-seed", fmt.Sprint(opt.seed),
	})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: coordinator: %v\n", name, err)
		return 2
	}
	defer coord.stop()

	body, _, err := submitSync(ctx, coord.addr, req, opt.seed)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: submit: %v\n", name, err)
		return 1
	}
	if !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: post-retry report differs from baseline (%d vs %d bytes)\n",
			name, len(body), len(baseline))
		return 1
	}
	metrics, err := fetchMetrics(ctx, coord.addr)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: metrics: %v\n", name, err)
		return 1
	}
	if metricValue(metrics, `hgserved_integrity_failures_total{source="dispatch"}`) != 1 {
		fmt.Fprintf(opt.out, "hgchaos: %s: want exactly 1 dispatch integrity failure, metrics:\n%s\n", name, metrics)
		return 1
	}
	// The cache-poisoning probe: a refetch must be a coordinator cache hit
	// with the VERIFIED bytes — the corrupted body must not have been stored.
	body2, disp, err := submitSyncDisposition(ctx, coord.addr, req, opt.seed)
	if err != nil || disp != "hit" || !bytes.Equal(body2, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: refetch disposition %q identical=%v err=%v, want an unpoisoned hit\n",
			name, disp, bytes.Equal(body2, baseline), err)
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: corrupted dispatch retried clean; cache never poisoned\n", name)

	// Peer path: worker B reads A's cached report through a corrupting
	// transport; the envelope mismatch must demote to a local compute.
	peerB, err := startDaemon(ctx, opt, name+"-b", []string{
		"-peers", worker.addr,
		"-peer-timeout", "500ms",
		"-net-chaos", "net:internal:1:corrupt",
		"-chaos-seed", fmt.Sprint(opt.seed),
	})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: worker B: %v\n", name, err)
		return 2
	}
	defer peerB.stop()
	bodyB, dispB, err := submitSyncDisposition(ctx, peerB.addr, req, opt.seed)
	if err != nil || dispB != "miss" || !bytes.Equal(bodyB, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: corrupted peer probe: disposition %q identical=%v err=%v, want miss\n",
			name, dispB, bytes.Equal(bodyB, baseline), err)
		return 1
	}
	metricsB, err := fetchMetrics(ctx, peerB.addr)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: metrics B: %v\n", name, err)
		return 1
	}
	if metricValue(metricsB, `hgserved_integrity_failures_total{source="peer"}`) != 1 {
		fmt.Fprintf(opt.out, "hgchaos: %s: want exactly 1 peer integrity failure, metrics:\n%s\n", name, metricsB)
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: corrupted peer response demoted to a byte-identical local compute\n", name)
	return 0
}

// flappingWorker refuses the worker's first 8 heartbeat probes and then lets
// them succeed: the breaker must be seen open, recover to closed, count
// exactly 8 refused faults, and dispatch the next job to the recovered
// worker.
func flappingWorker(ctx context.Context, opt options, req string, baseline []byte) int {
	name := "flapping-worker"
	cpDir := filepath.Join(opt.workdir, name, "checkpoints")
	if err := os.MkdirAll(cpDir, 0o755); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 2
	}
	worker, err := startDaemon(ctx, opt, name+"-w", []string{"-checkpoint-dir", cpDir})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: worker: %v\n", name, err)
		return 2
	}
	defer worker.stop()

	// Refuse heartbeat probes 1..8; probe 9 onward succeeds. The flap window
	// is a pure function of the spec, not of timing.
	var ruleParts []string
	for k := 1; k <= 8; k++ {
		ruleParts = append(ruleParts, fmt.Sprintf("net:readyz:%d:refused", k))
	}
	coord, err := startDaemon(ctx, opt, name+"-coord", []string{
		"-cluster-workers", worker.addr,
		"-heartbeat-interval", "100ms",
		"-checkpoint-dir", cpDir,
		"-net-chaos", strings.Join(ruleParts, ","),
		"-chaos-seed", fmt.Sprint(opt.seed),
	})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: coordinator: %v\n", name, err)
		return 2
	}
	defer coord.stop()

	// The breaker must trip open during the refused window...
	if err := waitBreakerState(ctx, coord.addr, worker.addr, "open"); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: breaker open after consecutive refused probes\n", name)
	// ...and close again once probes recover (walking through half-open).
	if err := waitBreakerState(ctx, coord.addr, worker.addr, "closed"); err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", name, err)
		return 1
	}

	metrics, err := fetchMetrics(ctx, coord.addr)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: metrics: %v\n", name, err)
		return 1
	}
	if got := metricValue(metrics, `hgserved_net_faults_injected_total{fault="refused"}`); got != 8 {
		fmt.Fprintf(opt.out, "hgchaos: %s: refused faults = %d, want exactly 8\n", name, got)
		return 1
	}

	// The recovered worker takes the next job; bytes stay baseline-identical.
	body, jobID, err := submitSync(ctx, coord.addr, req, opt.seed)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: post-recovery submit: %v\n", name, err)
		return 1
	}
	if !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: post-recovery report differs from baseline (%d vs %d bytes)\n",
			name, len(body), len(baseline))
		return 1
	}
	st, err := jobStatus(ctx, coord.addr, jobID)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: job status: %v\n", name, err)
		return 1
	}
	if st.Worker != worker.addr {
		fmt.Fprintf(opt.out, "hgchaos: %s: post-recovery job ran on %q, want the recovered worker %s\n",
			name, st.Worker, worker.addr)
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: %s: breaker recovered closed; next dispatch routed to the worker, bytes byte-identical\n", name)
	return 0
}
