// Command hgchaos is the crash-consistency harness: it boots a real
// hgserved daemon, submits a reproducible workload, kills the daemon at
// fault-injected points (mid-record write, mid-fsync, mid-drain), restarts
// it, resubmits the identical request, and asserts that the recovered
// report is byte-identical to an uninterrupted run.
//
// Usage:
//
//	hgchaos -bin ./hgserved -seed 7 -scenarios mid-record,mid-fsync,mid-drain
//
// The kill points ride on hgserved's -chaos flag (internal/chaos fault
// specs), so where the process dies is a deterministic function of the spec,
// never of timing. What hgchaos proves end to end:
//
//   - the journal's completed starts survive a SIGKILL (torn tails included),
//   - recovery quarantines damaged records instead of aborting,
//   - the resumed run reproduces the uninterrupted report byte for byte.
//
// Cluster scenarios (cluster-topology, cluster-worker-kill,
// cluster-coord-kill, cluster-degrade) extend the proof to node-level
// faults: a coordinator plus worker fleet is booted, a worker (or the
// coordinator) is SIGKILLed mid-job, and the failed-over, journal-resumed
// result — or the fully degraded local compute — must still be
// byte-identical to the uninterrupted single-node baseline.
//
// The portfolio scenario proves mode=portfolio determinism: identical
// report bytes across a repeat, a restart with a warm (advisory) outcome
// store, a storeless daemon, and 1/2/3-worker cluster topologies.
//
// Network chaos scenarios (net-partition, slow-peer, corrupt-response,
// flapping-worker) arm hgserved's -net-chaos transport instead of killing
// processes: blackholed workers trip circuit breakers and reroute, slow
// peers demote to local computes, bit-corrupted RPC responses are caught by
// the sha256 envelope and retried without poisoning any cache, and a
// flapping worker's breaker recovers closed — all with baseline-identical
// report bytes (DESIGN.md §16).
//
// Exit codes: 0 all scenarios hold, 1 a crash-consistency assertion failed,
// 2 environment/setup failure.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"syscall"
	"time"

	"hgpart/internal/chaos"
)

func main() {
	var (
		bin       = flag.String("bin", "hgserved", "path to the hgserved binary under test")
		seed      = flag.Uint64("seed", 7, "workload seed (reports are a pure function of it)")
		starts    = flag.Int("starts", 6, "multistart count in the workload")
		scale     = flag.Float64("scale", 0.2, "benchmark downscale factor for the workload instance")
		scenarios = flag.String("scenarios", "mid-record,mid-fsync,mid-drain", "comma-separated kill scenarios")
		workdir   = flag.String("workdir", "", "working directory (default: a fresh temp dir, removed on success)")
		timeout   = flag.Duration("timeout", 2*time.Minute, "overall harness deadline")
	)
	flag.Parse()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	os.Exit(run(ctx, options{
		bin:       *bin,
		seed:      *seed,
		starts:    *starts,
		scale:     *scale,
		scenarios: strings.Split(*scenarios, ","),
		workdir:   *workdir,
		out:       os.Stdout,
	}))
}

type options struct {
	bin       string
	seed      uint64
	starts    int
	scale     float64
	scenarios []string
	workdir   string
	out       io.Writer
}

// scenario describes one kill point. Specs count operations on the journal:
// the header is write/sync #1 on a ".jsonl" path, record k is #(k+1).
type scenario struct {
	name string
	// spec arms hgserved's -chaos fault injection.
	spec string
	// external kills from outside: SIGTERM to start the drain, then SIGKILL
	// before it can finish.
	external bool
	// wantResume asserts the recovery run resumed >= 1 journaled start —
	// guaranteed when the spec lets >= 1 record become durable before dying.
	wantResume bool
	// wantQuarantine asserts recovery quarantined a damaged record into the
	// journal's .quarantine sidecar (torn-write scenarios).
	wantQuarantine bool
}

var scenarioByName = map[string]scenario{
	// Die halfway through the 3rd record's write: records 1-2 durable,
	// record 3 torn. Recovery must quarantine the torn tail and resume 2.
	"mid-record": {name: "mid-record", spec: "write:.jsonl:4:torn+kill", wantResume: true, wantQuarantine: true},
	// Die inside the 4th record's fsync: the record's bytes were written
	// but never acknowledged durable. Recovery takes whatever survived.
	"mid-fsync": {name: "mid-fsync", spec: "sync:.jsonl:5:kill", wantResume: true},
	// SIGTERM starts the graceful drain (running job interrupted, completed
	// starts journaled), then SIGKILL lands before the drain finishes. The
	// latency spec stretches every journal write so the workload is reliably
	// still in flight at SIGTERM and still draining at SIGKILL.
	"mid-drain": {name: "mid-drain", spec: "write:.jsonl:p1:latency=120ms", external: true},
}

func run(ctx context.Context, opt options) int {
	if opt.workdir == "" {
		dir, err := os.MkdirTemp("", "hgchaos-*")
		if err != nil {
			fmt.Fprintf(opt.out, "hgchaos: workdir: %v\n", err)
			return 2
		}
		opt.workdir = dir
		defer os.RemoveAll(dir)
	}
	req := fmt.Sprintf(`{"benchmark":"ibm01","scale":%g,"engine":"flat","starts":%d,"seed":%d}`,
		opt.scale, opt.starts, opt.seed)

	baseline, code := baselineReport(ctx, opt, req)
	if baseline == nil {
		return code
	}
	fmt.Fprintf(opt.out, "hgchaos: baseline report: %d bytes (seed %d, %d starts)\n",
		len(baseline), opt.seed, opt.starts)

	failed := 0
	for _, name := range opt.scenarios {
		name = strings.TrimSpace(name)
		var rc int
		if strings.HasPrefix(name, "cluster-") {
			rc = runClusterScenario(ctx, opt, name, req, baseline)
		} else if slices.Contains(netScenarioNames, name) {
			rc = runNetScenario(ctx, opt, name, req, baseline)
		} else if name == "portfolio" {
			rc = runPortfolioScenario(ctx, opt)
		} else {
			sc, ok := scenarioByName[name]
			if !ok {
				fmt.Fprintf(opt.out, "hgchaos: unknown scenario %q\n", name)
				return 2
			}
			rc = runScenario(ctx, opt, sc, req, baseline)
		}
		switch rc {
		case 0:
			fmt.Fprintf(opt.out, "hgchaos: %-10s PASS\n", name)
		case 1:
			fmt.Fprintf(opt.out, "hgchaos: %-10s FAIL\n", name)
			failed++
		default:
			return rc
		}
	}
	if failed > 0 {
		fmt.Fprintf(opt.out, "hgchaos: %d scenario(s) failed\n", failed)
		return 1
	}
	fmt.Fprintf(opt.out, "hgchaos: all scenarios hold: recovered reports are byte-identical\n")
	return 0
}

// baselineReport computes the uninterrupted reference answer.
func baselineReport(ctx context.Context, opt options, req string) ([]byte, int) {
	d, err := startDaemon(ctx, opt, "baseline", nil)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: baseline daemon: %v\n", err)
		return nil, 2
	}
	defer d.stop()
	body, _, err := submitSync(ctx, d.addr, req, opt.seed)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: baseline request: %v\n", err)
		return nil, 2
	}
	return body, 0
}

// runScenario executes one kill/restart/verify cycle. Returns 0 on pass,
// 1 on assertion failure, 2 on environment failure.
func runScenario(ctx context.Context, opt options, sc scenario, req string, baseline []byte) int {
	cpDir := filepath.Join(opt.workdir, sc.name, "checkpoints")

	// Phase 1: boot with the kill armed, submit, and watch the daemon die.
	// Spec-armed kills are deterministic (the process kills itself on the
	// Nth journal operation). External kills race the drain by construction;
	// if the daemon wins and exits cleanly there is nothing to verify, so
	// re-arm with a different SIGTERM delay, bounded.
	termDelays := []time.Duration{250 * time.Millisecond}
	if sc.external {
		termDelays = []time.Duration{250 * time.Millisecond, 180 * time.Millisecond,
			310 * time.Millisecond, 210 * time.Millisecond, 280 * time.Millisecond}
	}
	killed := false
	for attempt, termDelay := range termDelays {
		if err := os.RemoveAll(cpDir); err != nil {
			fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", sc.name, err)
			return 2
		}
		if err := os.MkdirAll(cpDir, 0o755); err != nil {
			fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", sc.name, err)
			return 2
		}
		var extra []string
		if sc.spec != "" {
			extra = []string{"-chaos", sc.spec}
		}
		d, err := startDaemon(ctx, opt, fmt.Sprintf("%s-victim-%d", sc.name, attempt),
			append(extra, "-checkpoint-dir", cpDir))
		if err != nil {
			fmt.Fprintf(opt.out, "hgchaos: %s: victim daemon: %v\n", sc.name, err)
			return 2
		}
		// Async submit: the victim may die before a sync response arrives.
		if err := submitAsync(ctx, d.addr, req); err != nil && !sc.external {
			// A self-killing spec only fires on a journal write, which
			// happens after the 202 is sent; a submit error there is real.
			fmt.Fprintf(opt.out, "hgchaos: %s: submit: %v\n", sc.name, err)
			d.stop()
			return 2
		}
		if sc.external {
			// Let the run get going, SIGTERM to start the drain
			// (interrupting the job and journaling its completed starts),
			// then SIGKILL before the drain can finish. After SIGTERM the
			// drain lasts only the remainder of the in-flight delayed write,
			// so the kill must follow fast; when SIGTERM lands in the narrow
			// idle gap between writes the drain wins and we re-arm.
			time.Sleep(termDelay)
			_ = d.cmd.Process.Signal(syscall.SIGTERM)
			time.Sleep(25 * time.Millisecond)
			_ = d.cmd.Process.Kill()
		}
		err = d.waitKilled(ctx)
		if err == nil {
			killed = true
			break
		}
		if sc.external && attempt < len(termDelays)-1 {
			fmt.Fprintf(opt.out, "hgchaos: %s: drain outran the kill (%v); re-arming\n", sc.name, err)
			continue
		}
		fmt.Fprintf(opt.out, "hgchaos: %s: %v\n", sc.name, err)
		return 1
	}
	if !killed {
		return 1
	}
	journals, _ := filepath.Glob(filepath.Join(cpDir, "*.jsonl"))
	if len(journals) == 0 {
		fmt.Fprintf(opt.out, "hgchaos: %s: no journal survived the kill\n", sc.name)
		return 1
	}

	// Phase 2: restart clean on the same checkpoint dir and resubmit.
	d2, err := startDaemon(ctx, opt, sc.name+"-recovery", []string{"-checkpoint-dir", cpDir})
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: recovery daemon: %v\n", sc.name, err)
		return 2
	}
	defer d2.stop()
	body, jobID, err := submitSync(ctx, d2.addr, req, opt.seed)
	if err != nil {
		fmt.Fprintf(opt.out, "hgchaos: %s: recovery request: %v\n", sc.name, err)
		return 1
	}

	// The core guarantee: recovery reproduces the uninterrupted answer.
	if !bytes.Equal(body, baseline) {
		fmt.Fprintf(opt.out, "hgchaos: %s: recovered report differs from baseline (%d vs %d bytes)\n",
			sc.name, len(body), len(baseline))
		return 1
	}
	if sc.wantResume {
		n, err := resumedStarts(ctx, d2.addr, jobID)
		if err != nil {
			fmt.Fprintf(opt.out, "hgchaos: %s: job status: %v\n", sc.name, err)
			return 1
		}
		if n < 1 {
			fmt.Fprintf(opt.out, "hgchaos: %s: recovery recomputed everything (resumed=0); the journal did its job in vain\n", sc.name)
			return 1
		}
		fmt.Fprintf(opt.out, "hgchaos: %s: resumed %d journaled start(s)\n", sc.name, n)
	}
	if sc.wantQuarantine {
		side, _ := filepath.Glob(filepath.Join(cpDir, "*.jsonl.quarantine"))
		if len(side) == 0 {
			fmt.Fprintf(opt.out, "hgchaos: %s: torn record left no quarantine sidecar\n", sc.name)
			return 1
		}
	}
	return 0
}

// daemon is one hgserved process under harness control.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	log  *os.File
}

// startDaemon boots hgserved on an ephemeral port and waits (with seeded
// jittered backoff) for the addr-file handshake.
func startDaemon(ctx context.Context, opt options, name string, extraArgs []string) (*daemon, error) {
	dir := filepath.Join(opt.workdir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	addrFile := filepath.Join(dir, "addr")
	logf, err := os.Create(filepath.Join(dir, "daemon.log"))
	if err != nil {
		return nil, err
	}
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "1",
		"-start-workers", "1",
		"-stuck-after", "0",
	}, extraArgs...)
	cmd := exec.Command(opt.bin, args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, fmt.Errorf("start %s: %w", opt.bin, err)
	}
	d := &daemon{cmd: cmd, log: logf}

	retry := chaos.Retry{MaxAttempts: 50, BaseDelay: 10 * time.Millisecond, MaxDelay: 200 * time.Millisecond, Seed: opt.seed}
	err = retry.Do(ctx, func() (time.Duration, bool, error) {
		b, err := os.ReadFile(addrFile)
		if err != nil || len(bytes.TrimSpace(b)) == 0 {
			return 0, true, fmt.Errorf("addr-file not ready: %v", err)
		}
		d.addr = string(bytes.TrimSpace(b))
		return 0, false, nil
	})
	if err != nil {
		d.stop()
		return nil, fmt.Errorf("daemon %s never published its address: %w", name, err)
	}
	return d, nil
}

// stop terminates the daemon gracefully (best-effort) and reaps it.
func (d *daemon) stop() {
	if d.cmd.ProcessState == nil {
		_ = d.cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = d.cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			_ = d.cmd.Process.Kill()
			<-done
		}
	}
	d.log.Close()
}

// waitKilled reaps the process and asserts it died by SIGKILL — the fault
// spec's self-kill or the harness's external kill, never a clean exit.
func (d *daemon) waitKilled(ctx context.Context) error {
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-ctx.Done():
		_ = d.cmd.Process.Kill()
		<-done
		return fmt.Errorf("daemon outlived the kill point: %w", ctx.Err())
	}
	defer d.log.Close()
	ws, ok := d.cmd.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		return fmt.Errorf("daemon exited %q, want death by SIGKILL", d.cmd.ProcessState)
	}
	return nil
}

// submitSync posts the workload and returns the report body and job id,
// retrying 503s (daemon still draining or warming) with seeded backoff that
// honors Retry-After.
func submitSync(ctx context.Context, addr, req string, seed uint64) (body []byte, jobID string, err error) {
	retry := chaos.Retry{MaxAttempts: 8, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Seed: seed}
	err = retry.Do(ctx, func() (time.Duration, bool, error) {
		resp, herr := httpPost(ctx, "http://"+addr+"/v1/partition", req)
		if herr != nil {
			return 0, true, herr
		}
		defer resp.Body.Close()
		b, rerr := io.ReadAll(resp.Body)
		if rerr != nil {
			return 0, true, rerr
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			after, _ := chaos.RetryAfterHeader(resp.Header.Get("Retry-After"))
			return after, true, fmt.Errorf("503: %s", bytes.TrimSpace(b))
		}
		if resp.StatusCode != http.StatusOK {
			return 0, false, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
		}
		body = b
		jobID = resp.Header.Get("X-Hgserved-Job")
		return 0, false, nil
	})
	return body, jobID, err
}

// submitAsync fires the workload without waiting for the computation.
func submitAsync(ctx context.Context, addr, req string) error {
	async := strings.TrimSuffix(strings.TrimSpace(req), "}") + `,"async":true}`
	resp, err := httpPost(ctx, "http://"+addr+"/v1/partition", async)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("async submit: status %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return nil
}

// resumedStarts reads how many starts the job recovered from the journal.
func resumedStarts(ctx context.Context, addr, jobID string) (int, error) {
	if jobID == "" {
		return 0, fmt.Errorf("response carried no X-Hgserved-Job header")
	}
	reqq, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(reqq)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Resumed int `json:"resumed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	return st.Resumed, nil
}

func httpPost(ctx context.Context, url, body string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return http.DefaultClient.Do(req)
}
