package main

// TestNetChaosSmoke is the `make netchaos-smoke` CI gate: build hgserved
// with the race detector and run the network chaos scenarios — a blackholed
// worker tripping its breaker with failover to the survivor, a slow peer
// demoting to a local compute, bit-corrupted dispatch and peer responses
// caught by the sha256 envelope (cache never poisoned), and a flapping
// worker whose breaker recovers closed. Every path must reproduce the
// uninterrupted single-node baseline byte for byte.

import (
	"bytes"
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestNetChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("net chaos smoke boots real daemon fleets; skipped in -short")
	}
	workdir := t.TempDir()
	bin := filepath.Join(workdir, "hgserved")
	// -race on the daemon itself: the chaos transport, breaker transitions
	// and integrity checks all run under the detector, per the CI gate.
	build := exec.Command("go", "build", "-race", "-o", bin, "hgpart/cmd/hgserved")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build hgserved -race: %v\n%s", err, out)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	var out bytes.Buffer
	rc := run(ctx, options{
		bin:       bin,
		seed:      7,
		starts:    6,
		scale:     0.12,
		scenarios: netScenarioNames,
		workdir:   filepath.Join(workdir, "harness"),
		out:       &out,
	})
	t.Logf("harness output:\n%s", out.String())
	if rc != 0 {
		t.Fatalf("hgchaos exit code %d, want 0", rc)
	}
	for _, want := range []string{
		"net-partition", "slow-peer", "corrupt-response", "flapping-worker",
		"breaker open", "cache never poisoned", "byte-identical",
	} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("harness output lacks %q", want)
		}
	}
}
