// Command hgeval regenerates the paper's tables and methodology figures.
//
// Usage:
//
//	hgeval -table 1              # Table 1 at the default laptop scale
//	hgeval -table 4 -scale 0.2   # Table 4 on 20%-size instances
//	hgeval -table 2 -full        # Table 2 with the paper's full protocol
//	hgeval -figure bsf           # Figure A (best-so-far curves)
//	hgeval -figure pareto        # Figure B (non-dominated frontier)
//	hgeval -figure ranking       # Figure C (speed-dependent ranking)
//	hgeval -all                  # every table and figure
//
// Add -csv to emit CSV instead of an aligned text table.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"hgpart/internal/experiments"
	"hgpart/internal/report"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate paper table 1-5")
		extra    = flag.String("extra", "", "extra experiment: corking, insertion, significance, regimes, era")
		figure   = flag.String("figure", "", "regenerate methodology figure: bsf, pareto, ranking")
		all      = flag.Bool("all", false, "regenerate every table and figure")
		full     = flag.Bool("full", false, "use the paper's full protocol (hours of CPU)")
		scale    = flag.Float64("scale", 0, "instance downscale factor (default 0.15)")
		runs     = flag.Int("runs", 0, "single-start trials per cell for Tables 1-3 (paper: 100)")
		reps     = flag.Int("reps", 0, "repetitions per configuration for Tables 4-5 (paper: 50)")
		seed     = flag.Uint64("seed", 0, "experiment seed (default 1999)")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		plotIt   = flag.Bool("plot", false, "also render ASCII charts where available (figure bsf)")
		spread   = flag.Bool("dist", false, "append distribution descriptors (stddev) to Tables 4/5 cells")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget; unevaluated cells are marked, not fabricated")
		checkInv = flag.Bool("check-invariants", false, "run engines in debug mode and verify every start's outcome")
	)
	flag.Parse()

	if *scale > 1 || *scale < 0 {
		fatal(fmt.Errorf("-scale %g out of range (0,1]", *scale))
	}

	opt := experiments.DefaultOptions()
	if *full {
		opt = experiments.PaperOptions()
	}
	if *scale > 0 {
		opt.Scale = *scale
	}
	if *runs > 0 {
		opt.Runs = *runs
	}
	if *reps > 0 {
		opt.Reps = *reps
	}
	if *seed > 0 {
		opt.Seed = *seed
	}
	opt.Spread = *spread
	opt.CheckInvariants = *checkInv
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opt.Ctx = ctx
	}

	emit := func(t *report.Table) {
		if *csv {
			fmt.Println("#", t.Title)
			t.WriteCSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
	run := func(name string, f func(experiments.Options) *report.Table) {
		t0 := time.Now()
		tab := f(opt)
		fmt.Fprintf(os.Stderr, "[%s generated in %.1fs]\n", name, time.Since(t0).Seconds())
		emit(tab)
	}

	if *all {
		run("table1", experiments.Table1)
		run("table2", experiments.Table2)
		run("table3", experiments.Table3)
		run("table4", func(o experiments.Options) *report.Table { return experiments.Table45(o, 0.02) })
		run("table5", func(o experiments.Options) *report.Table { return experiments.Table45(o, 0.10) })
		run("figureA-bsf", experiments.FigureBSF)
		run("figureB-pareto", experiments.FigurePareto)
		run("figureC-ranking", experiments.FigureRanking)
		run("extra-corking", experiments.TableCorking)
		run("extra-insertion", experiments.TableInsertion)
		run("extra-significance", experiments.TableSignificance)
		run("extra-regimes", experiments.TableRegimes)
		run("extra-era", experiments.TableBenchmarkEra)
		return
	}

	switch *table {
	case 0:
	case 1:
		run("table1", experiments.Table1)
	case 2:
		run("table2", experiments.Table2)
	case 3:
		run("table3", experiments.Table3)
	case 4:
		run("table4", func(o experiments.Options) *report.Table { return experiments.Table45(o, 0.02) })
	case 5:
		run("table5", func(o experiments.Options) *report.Table { return experiments.Table45(o, 0.10) })
	default:
		fatal(fmt.Errorf("no table %d (valid: 1-5)", *table))
	}

	switch *extra {
	case "":
	case "corking":
		run("extra-corking", experiments.TableCorking)
	case "insertion":
		run("extra-insertion", experiments.TableInsertion)
	case "significance":
		run("extra-significance", experiments.TableSignificance)
	case "regimes":
		run("extra-regimes", experiments.TableRegimes)
	case "era":
		run("extra-era", experiments.TableBenchmarkEra)
	default:
		fatal(fmt.Errorf("no extra %q (valid: corking, insertion, significance, regimes)", *extra))
	}

	switch *figure {
	case "":
	case "bsf":
		run("figureA-bsf", experiments.FigureBSF)
		if *plotIt {
			fmt.Println(experiments.FigureBSFChart(opt))
		}
	case "pareto":
		run("figureB-pareto", experiments.FigurePareto)
	case "ranking":
		run("figureC-ranking", experiments.FigureRanking)
	default:
		fatal(fmt.Errorf("no figure %q (valid: bsf, pareto, ranking)", *figure))
	}

	if *table == 0 && *figure == "" && *extra == "" && !*all {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgeval:", err)
	os.Exit(1)
}
