package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI contract for scripting: documented exit codes (0 ok, 1 internal,
// 2 usage/parse, 3 infeasible balance) and the -o assignment file.

func runForExit(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(hgpartBinary(t), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("hgpart %v: %v\n%s", args, err, out)
	}
	return ee.ExitCode(), string(out)
}

func TestExitCodeUsage(t *testing.T) {
	cases := [][]string{
		{"-ibm", "1", "-scale", "2"},            // bad flag value
		{"-ibm", "1", "-tol", "1.5"},            // bad tolerance
		{},                                      // no input at all
		{"-ibm", "1", "-engine", "quantum"},     // unknown engine
		{"-in", "/nonexistent/never.hgr", "-q"}, // unreadable input
	}
	for _, args := range cases {
		if code, out := runForExit(t, args...); code != 2 {
			t.Errorf("hgpart %v: exit %d, want 2\n%s", args, code, out)
		}
	}
}

func TestExitCodeParseError(t *testing.T) {
	// A malformed .hgr (header promises more nets than provided) must be a
	// usage error (2), not a panic or an internal error.
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.hgr")
	if err := os.WriteFile(path, []byte("3 2 11\n1 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := runForExit(t, "-in", path, "-q")
	if code != 2 {
		t.Fatalf("malformed hgr: exit %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "netlist:") {
		t.Fatalf("error output %q does not name the parser", out)
	}
}

func TestExitCodeInfeasible(t *testing.T) {
	// Two wildly unequal vertices and a tight tolerance: no legal bisection.
	dir := t.TempDir()
	path := filepath.Join(dir, "skew.hgr")
	if err := os.WriteFile(path, []byte("1 2 11\n1 1 2\n1\n1000\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := runForExit(t, "-in", path, "-q", "-engine", "flat", "-tol", "0.001")
	if code != 3 {
		t.Fatalf("infeasible balance: exit %d, want 3\n%s", code, out)
	}
}

func TestOutputAssignment(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "x.part")
	code, out := runForExit(t, "-ibm", "1", "-scale", "0.1", "-engine", "flat",
		"-starts", "2", "-q", "-o", outFile)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatalf("assignment file not written: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	zeros, ones := 0, 0
	for i, ln := range lines {
		switch ln {
		case "0":
			zeros++
		case "1":
			ones++
		default:
			t.Fatalf("line %d is %q, want 0 or 1", i+1, ln)
		}
	}
	if zeros == 0 || ones == 0 {
		t.Fatalf("degenerate assignment: %d zeros, %d ones", zeros, ones)
	}

	// The robust-harness path writes a worker-count-invariant file: the same
	// seed yields byte-identical assignments at -workers 1 and 2.
	robust := func(name string, workers string) string {
		f := filepath.Join(dir, name)
		code, out := runForExit(t, "-ibm", "1", "-scale", "0.1", "-engine", "flat",
			"-starts", "2", "-q", "-workers", workers, "-o", f)
		if code != 0 {
			t.Fatalf("robust path (workers=%s) exit %d\n%s", workers, code, out)
		}
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if robust("w1.part", "1") != robust("w2.part", "2") {
		t.Fatal("robust assignment differs across worker counts")
	}

	// k-way assignments carry part ids for every vertex.
	outFile3 := filepath.Join(dir, "k.part")
	code, out = runForExit(t, "-ibm", "1", "-scale", "0.1", "-k", "4",
		"-starts", "1", "-q", "-o", outFile3)
	if code != 0 {
		t.Fatalf("k-way exit %d\n%s", code, out)
	}
	data3, err := os.ReadFile(outFile3)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimRight(string(data3), "\n"), "\n")); n != len(lines) {
		t.Fatalf("k-way assignment has %d lines, bisection had %d", n, len(lines))
	}
}
