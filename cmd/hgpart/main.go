// Command hgpart bisects a hypergraph read from a file (or a generated
// synthetic instance) and reports cut, balance and runtime.
//
// Usage:
//
//	hgpart -in circuit.hgr -tol 0.02 -starts 4
//	hgpart -in ibm01.netD -are ibm01.are -engine flat -tol 0.10
//	hgpart -ibm 1 -scale 0.2 -engine clip
//
// Long multistart runs can be made fault tolerant: -timeout bounds the run
// (partial results are reported, not discarded), -checkpoint journals every
// completed start so -resume continues an interrupted run with identical
// statistics, -retries reseeds failed starts, and -check-invariants verifies
// every partition against a from-scratch recomputation:
//
//	hgpart -ibm 18 -starts 100 -timeout 2m -checkpoint run.jsonl
//	hgpart -ibm 18 -starts 100 -checkpoint run.jsonl -resume
//
// Input format is chosen by extension: .hgr for hMETIS, anything else is
// parsed as ISPD98 .netD/.net (with -are supplying areas).
//
// -o <file> writes the best partition assignment, one line per vertex in
// instance order: side 0/1 for bisection, the part id for -k > 2.
//
// Exit codes:
//
//	0  success
//	1  internal error (I/O failure writing results, engine failure)
//	2  usage error or unparsable input (bad flags, malformed netlist)
//	3  no legal partition within the balance tolerance
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hgpart"
)

func main() {
	var (
		inPath  = flag.String("in", "", "input netlist (.hgr or .netD/.net)")
		arePath = flag.String("are", "", "ISPD98 .are area file (optional)")
		ibm     = flag.Int("ibm", 0, "generate ISPD98-like profile 1-18 instead of reading a file")
		scale   = flag.Float64("scale", 1.0, "downscale factor for -ibm, in (0,1]")
		tol     = flag.Float64("tol", 0.02, "balance tolerance (0.02 = 49-51%)")
		starts  = flag.Int("starts", 1, "independent starts; best kept")
		vcycles = flag.Int("vcycles", 1, "V-cycles on the best solution (ML engine)")
		engine  = flag.String("engine", "ml", "engine: ml, flat, clip, spectral")
		impl    = flag.String("impl", "optimized", "FM implementation: optimized (arena engine) or reference (frozen seed); results are bit-identical")
		k       = flag.Int("k", 2, "number of parts (k>2 uses recursive bisection)")
		refineK = flag.Bool("krefine", false, "direct k-way FM refinement after recursive bisection")
		refineT = flag.Int("refine-threads", 0, "with -krefine: use the deterministic synchronous-round parallel refiner with this many threads (output is byte-identical for every positive value; 0 = sequential refiner)")
		seed    = flag.Uint64("seed", 1, "random seed")

		usePortfolio = flag.Bool("portfolio", false, "race the curated engine portfolio for the first budget slice, then commit the rest to the winner (bisection only; ignores -engine)")
		portfolioDB  = flag.String("portfolio-store", "", "with -portfolio: persist per-bucket arm outcomes to this file (advisory; never changes results)")
		workBudget   = flag.Int64("work-budget", 0, "deterministic work-unit budget (0 = unbounded); with -portfolio the first quarter funds the race")

		traceTo = flag.String("trace", "", "write per-pass FM trace CSV to this file (flat/clip engines)")
		outPath = flag.String("o", "", "write the best partition assignment to this file (one side/part id per vertex line)")
		quiet   = flag.Bool("q", false, "suppress instance statistics")

		timeout    = flag.Duration("timeout", 0, "wall-clock budget; undone starts are skipped, partial results reported")
		workers    = flag.Int("workers", 0, "concurrent starts (robust harness; 0 = GOMAXPROCS)")
		checkpoint = flag.String("checkpoint", "", "journal completed starts to this JSONL file")
		resume     = flag.Bool("resume", false, "resume from -checkpoint instead of starting over")
		retries    = flag.Int("retries", 0, "retry a failed start up to this many times with a reseeded generator")
		checkInv   = flag.Bool("check-invariants", false, "debug mode: verify partition and gain-structure invariants")
	)
	flag.Parse()

	// Validate user input at the boundary; deeper layers treat bad values as
	// programming errors and panic.
	if *scale <= 0 || *scale > 1 {
		fatalUsage(fmt.Errorf("-scale %g out of range (0,1]", *scale))
	}
	if *tol <= 0 || *tol >= 1 {
		fatalUsage(fmt.Errorf("-tol %g out of range (0,1)", *tol))
	}
	if *resume && *checkpoint == "" {
		fatalUsage(fmt.Errorf("-resume requires -checkpoint <file>"))
	}
	if *impl != "optimized" && *impl != "reference" {
		fatalUsage(fmt.Errorf("-impl %q must be optimized or reference", *impl))
	}
	reference := *impl == "reference"
	if *refineT < 0 {
		fatalUsage(fmt.Errorf("-refine-threads %d must be >= 0", *refineT))
	}
	if *refineT > 0 && (*k <= 2 || !*refineK) {
		fatalUsage(fmt.Errorf("-refine-threads requires -krefine and -k > 2"))
	}
	if *workBudget < 0 {
		fatalUsage(fmt.Errorf("-work-budget %d must be >= 0", *workBudget))
	}
	if *usePortfolio && *k > 2 {
		fatalUsage(fmt.Errorf("-portfolio supports bisection only (-k 2)"))
	}
	if *portfolioDB != "" && !*usePortfolio {
		fatalUsage(fmt.Errorf("-portfolio-store requires -portfolio"))
	}

	h, err := loadInstance(*inPath, *arePath, *ibm, *scale, *seed)
	if err != nil {
		// Unreadable or malformed input is the user's to fix, not ours.
		fatalUsage(err)
	}
	if !*quiet {
		fmt.Fprint(os.Stderr, hgpart.ComputeStats(h))
	}

	if *k > 2 {
		runKWay(h, *k, *tol, *starts, *refineK, *refineT, *seed, reference, *checkInv, *outPath)
		return
	}

	total := h.TotalVertexWeight()
	bal := hgpart.NewBalance(total, *tol)

	if *usePortfolio {
		runPortfolio(h, bal, *starts, *seed, *workBudget, *portfolioDB, *outPath)
		return
	}

	if *engine == "spectral" {
		t0 := time.Now()
		p, sres, err := hgpart.SpectralBisect(h, bal, hgpart.SpectralOptions{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		checkLegal(p, bal)
		fmt.Printf("engine=spectral tolerance=%.3f\n", *tol)
		fmt.Printf("cut=%d (eigensolver iterations %d)\n", sres.Cut, sres.Iterations)
		printSides(p, total)
		fmt.Printf("time=%.3fs\n", time.Since(t0).Seconds())
		writeSides(*outPath, h.NumVertices(), p)
		return
	}

	if *traceTo != "" && (*engine == "flat" || *engine == "clip") {
		runTraced(h, bal, *engine, *traceTo, *seed, reference, *outPath)
		return
	}

	var kind hgpart.EngineKind
	switch *engine {
	case "ml":
		kind = hgpart.EngineML
	case "flat":
		kind = hgpart.EngineFlatFM
	case "clip":
		kind = hgpart.EngineFlatCLIP
	default:
		fatalUsage(fmt.Errorf("unknown engine %q (ml, flat, clip, spectral)", *engine))
	}

	if *timeout > 0 || *workers != 0 || *checkpoint != "" || *retries > 0 || *checkInv {
		runRobust(h, bal, *engine, *starts, *vcycles, *seed,
			*timeout, *workers, *checkpoint, *resume, *retries, *checkInv, reference, *outPath)
		return
	}

	t0 := time.Now()
	p, res, err := hgpart.Bisect(h, hgpart.BisectOptions{
		Tolerance:     *tol,
		Starts:        *starts,
		VCycles:       *vcycles,
		Engine:        kind,
		Seed:          *seed,
		ReferenceImpl: reference,
	})
	if err != nil {
		// The only Bisect failure reachable from validated flags is an
		// infeasible balance: no start produced a legal partition.
		fatalInfeasible(err)
	}
	checkLegal(p, bal)
	elapsed := time.Since(t0)

	fmt.Printf("engine=%s starts=%d tolerance=%.3f\n", *engine, *starts, *tol)
	fmt.Printf("cut=%d\n", res.Cut)
	printSides(p, total)
	fmt.Printf("time=%.3fs work=%d (normalized %.3fs)\n",
		elapsed.Seconds(), res.Work, float64(res.Work)/2e6)
	writeSides(*outPath, h.NumVertices(), p)
}

// runRobust runs the multistart through the fault-tolerant harness:
// wall-clock budget, parallel workers, panic isolation with optional retries,
// invariant verification and checkpoint/resume.
func runRobust(h *hgpart.Hypergraph, bal hgpart.Balance, engine string, starts, vcycles int,
	seed uint64, timeout time.Duration, workers int, checkpointPath string, resume bool,
	retries int, checkInv bool, reference bool, outPath string) {
	cfg := hgpart.StrongFMConfig(engine == "clip")
	cfg.CheckInvariants = checkInv
	cfg.ReferenceImpl = reference
	factory := func() hgpart.Heuristic {
		if engine == "ml" {
			return hgpart.NewMLHeuristic("ML", h, hgpart.MLConfig{Refine: cfg}, bal, vcycles)
		}
		return hgpart.NewFlatHeuristic("flat-"+engine, h, cfg, bal, hgpart.NewRNG(seed))
	}

	opt := hgpart.RunOptions{
		Workers:    workers,
		WallBudget: timeout,
		MaxRetries: retries,
	}
	if checkInv {
		opt.Verify = hgpart.VerifyOutcome(bal)
	}
	if checkpointPath != "" {
		cp, err := hgpart.OpenCheckpoint(checkpointPath, engine, seed, starts, resume)
		if err != nil {
			fatal(err)
		}
		defer cp.Close()
		opt.Checkpoint = cp
		if resume && cp.Resumed() > 0 {
			fmt.Fprintf(os.Stderr, "hgpart: resuming %d journaled starts from %s\n", cp.Resumed(), checkpointPath)
		}
	}

	t0 := time.Now()
	rep := hgpart.RunMultistart(context.Background(), factory, starts, seed, opt)

	fmt.Printf("engine=%s starts=%d workers=%d retries=%d check-invariants=%v\n",
		engine, starts, workers, retries, checkInv)
	fmt.Println(rep.Summary())
	if rep.Incomplete {
		fmt.Printf("incomplete: %s (%d of %d starts skipped)\n", rep.Reason, rep.Skipped, starts)
	}
	if rep.BestIdx < 0 {
		fatalInfeasible(fmt.Errorf("no start succeeded"))
	}
	best := rep.Best
	if best.P == nil && outPath != "" {
		// The best start was loaded from the journal, which persists cuts but
		// not partitions. -o needs the assignment, so deterministically
		// recompute exactly that start.
		o, err := hgpart.RerunStart(factory, seed, rep.BestIdx, rep.Results[rep.BestIdx].Attempts)
		if err != nil {
			fatal(fmt.Errorf("recompute resumed best start %d: %w", rep.BestIdx, err))
		}
		if o.Cut != best.Cut {
			fatal(fmt.Errorf("recomputed start %d cut %d != journaled %d (corrupt checkpoint?)",
				rep.BestIdx, o.Cut, best.Cut))
		}
		best = o
	}
	if best.P != nil {
		// Polish the best solution the way the plain path does (ML V-cycles).
		if polish := factory().PolishBest(best.P, hgpart.NewRNG(seed^0x9e3779b97f4a7c15)); polish.P != nil {
			best = polish
		}
		checkLegal(best.P, bal)
		fmt.Printf("cut=%d (best start %d)\n", best.P.Cut(), rep.BestIdx)
		printSides(best.P, h.TotalVertexWeight())
		writeSides(outPath, h.NumVertices(), best.P)
	} else {
		// The best start was loaded from the journal: its cut is known but
		// its partition was not persisted.
		fmt.Printf("cut=%d (best start %d, resumed from checkpoint; partition not retained)\n",
			best.Cut, rep.BestIdx)
	}
	fmt.Printf("time=%.3fs work=%d (normalized %.3fs)\n",
		time.Since(t0).Seconds(), rep.TotalWork, float64(rep.TotalWork)/2e6)
	if opt.Checkpoint != nil {
		if err := opt.Checkpoint.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "hgpart: checkpoint journal error (resume may be unreliable): %v\n", err)
		}
	}
}

// runPortfolio executes the -portfolio schedule: feature extraction, the
// arm race, and the committed multistart on the winner. Everything printed
// to stdout except the wall-clock time= line is a pure function of
// (instance, seed, starts, work budget); advisory store output (the
// prediction) goes to stderr so runs with cold and warm stores produce
// identical result output.
func runPortfolio(h *hgpart.Hypergraph, bal hgpart.Balance, starts int, seed uint64,
	workBudget int64, storePath, outPath string) {
	var store *hgpart.PortfolioStore
	if storePath != "" {
		st, err := hgpart.OpenPortfolioStore(storePath)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		store = st
	}

	t0 := time.Now()
	res, err := hgpart.RunPortfolio(context.Background(), h, bal, seed, starts, workBudget, store)
	if err != nil {
		// With a background context the only reachable failure is an
		// infeasible balance: no arm produced a legal partition.
		fatalInfeasible(err)
	}
	race := res.Race
	if race.Predicted != "" {
		fmt.Fprintf(os.Stderr, "hgpart: store predicted %s (hit=%v)\n", race.Predicted, race.StoreHit)
	}
	fmt.Printf("portfolio starts=%d bucket=%s arms=%d\n", starts, race.Bucket.Key(), len(race.Arms))
	for _, tr := range race.Traces {
		marker := " "
		if tr.Won {
			marker = "*"
		}
		if !tr.OK {
			fmt.Printf("%s %-16s starts=%d work=%d (no legal partition)\n", marker, tr.Arm, tr.Starts, tr.Work)
			continue
		}
		fmt.Printf("%s %-16s starts=%d cut=%d work=%d\n", marker, tr.Arm, tr.Starts, tr.Cut, tr.Work)
	}
	fmt.Printf("winner=%s source=%s\n", race.Arms[race.Winner].Name, res.Source)
	fmt.Println(res.Commit.Summary())
	fmt.Printf("cut=%d\n", res.Final.Cut)
	printSides(res.Final.P, h.TotalVertexWeight())
	fmt.Printf("time=%.3fs work=%d (normalized %.3fs)\n",
		time.Since(t0).Seconds(), res.TotalWork, float64(res.TotalWork)/2e6)
	if store != nil {
		if serr := store.Err(); serr != nil {
			fmt.Fprintf(os.Stderr, "hgpart: portfolio store degraded (outcomes may not persist): %v\n", serr)
		}
	}
	writeSides(outPath, h.NumVertices(), res.Final.P)
}

// checkLegal enforces the documented exit-3 contract: a best partition
// outside the balance bounds means the tolerance is infeasible for this
// instance (the engines keep the least-bad solution rather than none).
func checkLegal(p *hgpart.Partition, bal hgpart.Balance) {
	if !p.Legal(bal) {
		fatalInfeasible(fmt.Errorf(
			"no legal partition within tolerance: best has sides %d/%d, bounds [%d,%d]",
			p.Area(0), p.Area(1), bal.Lo, bal.Hi))
	}
}

func printSides(p *hgpart.Partition, total int64) {
	fmt.Printf("side0=%d (%.2f%%) side1=%d (%.2f%%)\n",
		p.Area(0), 100*float64(p.Area(0))/float64(total),
		p.Area(1), 100*float64(p.Area(1))/float64(total))
}

// runKWay handles -k > 2 via recursive bisection.
func runKWay(h *hgpart.Hypergraph, k int, tol float64, starts int, refine bool, refineThreads int, seed uint64, reference, checkInv bool, outPath string) {
	cfg := hgpart.KWayConfig{
		Tolerance:     tol,
		Starts:        starts,
		DirectRefine:  refine,
		RefineThreads: refineThreads,
	}
	cfg.Refine = hgpart.StrongFMConfig(false)
	cfg.Refine.ReferenceImpl = reference
	cfg.Refine.CheckInvariants = checkInv
	t0 := time.Now()
	res, err := hgpart.PartitionKWay(h, k, cfg, hgpart.NewRNG(seed))
	if err != nil {
		fatal(err)
	}
	// refine-threads is echoed like workers= elsewhere: informational, and
	// normalized away by the byte-identity regression tests because the
	// partition bytes cannot depend on it.
	fmt.Printf("k=%d tolerance=%.3f refine=%v refine-threads=%d\n", k, tol, refine, refineThreads)
	fmt.Printf("cut=%d lambda-1=%d imbalance=%.2f%%\n",
		res.CutNets, res.ConnectivityMinusOne, 100*res.Imbalance)
	w := hgpart.PartWeights(h, res.Parts, k)
	for p, x := range w {
		fmt.Printf("  part %d: weight %d (%.2f%%)\n", p, x,
			100*float64(x)/float64(h.TotalVertexWeight()))
	}
	fmt.Printf("time=%.3fs\n", time.Since(t0).Seconds())
	writeAssignment(outPath, h.NumVertices(), func(v int) int32 { return res.Parts[v] })
}

// runTraced runs a single traced flat start and writes the pass CSV.
func runTraced(h *hgpart.Hypergraph, bal hgpart.Balance, engine, path string, seed uint64, reference bool, outPath string) {
	cfg := hgpart.StrongFMConfig(engine == "clip")
	cfg.ReferenceImpl = reference
	r := hgpart.NewRNG(seed)
	eng := hgpart.NewFMEngine(h, cfg, bal, r)
	rec := &hgpart.TraceRecorder{KeepTrajectories: true}
	eng.SetTracer(rec)
	p := hgpart.NewPartition(h)
	p.RandomBalanced(r, bal)
	res := eng.Run(p)

	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := rec.WriteSummaryCSV(f); err != nil {
		fatal(err)
	}
	s := rec.Summarize()
	fmt.Printf("engine=%s (traced single start)\n", engine)
	fmt.Printf("cut=%d passes=%d moves=%d rolled_back=%d shortest_pass=%d\n",
		res.Cut, s.Passes, s.TotalMoves, s.TotalRolledBack, s.ShortestPassMoves)
	printSides(p, h.TotalVertexWeight())
	fmt.Printf("trace written to %s\n", path)
	writeSides(outPath, h.NumVertices(), p)
}

// writeSides writes a bisection assignment (hMETIS .part convention: one
// side per line, vertex order). A empty path is a no-op.
func writeSides(path string, n int, p *hgpart.Partition) {
	writeAssignment(path, n, func(v int) int32 { return int32(p.Side(int32(v))) })
}

// writeAssignment writes one part id per line for n vertices.
func writeAssignment(path string, n int, part func(int) int32) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(f)
	for v := 0; v < n; v++ {
		fmt.Fprintf(w, "%d\n", part(v))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("assignment written to %s\n", path)
}

func loadInstance(inPath, arePath string, ibm int, scale float64, seed uint64) (*hgpart.Hypergraph, error) {
	if ibm > 0 {
		spec, err := hgpart.IBMProfile(ibm)
		if err != nil {
			return nil, err
		}
		if scale < 1 {
			spec = hgpart.Scaled(spec, scale)
		}
		if seed != 1 {
			spec.Seed = seed
		}
		return hgpart.Generate(spec)
	}
	if inPath == "" {
		return nil, fmt.Errorf("need -in <file> or -ibm <n>")
	}
	f, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(inPath, ".hgr") {
		return hgpart.ParseHGR(f, inPath)
	}
	var are *os.File
	if arePath != "" {
		are, err = os.Open(arePath)
		if err != nil {
			return nil, err
		}
		defer are.Close()
		return hgpart.ParseNetD(f, are, inPath)
	}
	return hgpart.ParseNetD(f, nil, inPath)
}

// Exit codes, documented in the command comment above. fatal classifies
// netlist parse failures as usage errors even when they surface late.
const (
	exitInternal   = 1
	exitUsage      = 2
	exitInfeasible = 3
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgpart:", err)
	if _, ok := hgpart.AsParseError(err); ok {
		os.Exit(exitUsage)
	}
	os.Exit(exitInternal)
}

// fatalUsage reports a bad flag combination or unreadable/unparsable input.
func fatalUsage(err error) {
	fmt.Fprintln(os.Stderr, "hgpart:", err)
	os.Exit(exitUsage)
}

// fatalInfeasible reports that no legal partition exists within the balance
// tolerance — a property of the request, not a bug.
func fatalInfeasible(err error) {
	fmt.Fprintln(os.Stderr, "hgpart:", err)
	os.Exit(exitInfeasible)
}
