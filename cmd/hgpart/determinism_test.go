package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The worker-count invariance contract, end to end through the CLI: the same
// seed must produce byte-identical reports at -workers=1 and -workers=4.
// This is the user-visible face of the pre-split seed discipline that the
// seedflow analyzer guards statically.

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

func hgpartBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "hgpart-bin-")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "hgpart")
		out, err := exec.Command("go", "build", "-o", buildBin, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			buildBin = ""
			t.Logf("go build output:\n%s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building hgpart: %v", buildErr)
	}
	return buildBin
}

var (
	timeLineRE      = regexp.MustCompile(`(?m)^time=[^\n]*\n`)
	workersRE       = regexp.MustCompile(`workers=\d+`)
	refineThreadsRE = regexp.MustCompile(`refine-threads=\d+`)
)

// normalize strips the report lines that legitimately vary between runs:
// wall-clock timing and the echoes of the -workers and -refine-threads
// flags themselves (both are implementation knobs that must not change the
// computed bytes).
func normalize(out []byte) string {
	s := timeLineRE.ReplaceAllString(string(out), "")
	s = workersRE.ReplaceAllString(s, "workers=N")
	return refineThreadsRE.ReplaceAllString(s, "refine-threads=N")
}

func runHgpart(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command(hgpartBinary(t), args...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("hgpart %v: %v\nstderr: %s", args, err, stderr.String())
	}
	return normalize(out)
}

func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the hgpart binary")
	}
	base := []string{"-ibm", "1", "-scale", "0.1", "-starts", "8", "-seed", "7", "-q"}
	for _, engine := range []string{"ml", "flat"} {
		args := append([]string{"-engine", engine}, base...)
		serial := runHgpart(t, append(args, "-workers", "1")...)
		parallel := runHgpart(t, append(args, "-workers", "4")...)
		if serial != parallel {
			t.Errorf("engine %s: -workers=1 and -workers=4 reports differ\n--- workers=1 ---\n%s--- workers=4 ---\n%s",
				engine, serial, parallel)
		}
	}
}

func TestRunToRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the hgpart binary")
	}
	args := []string{"-ibm", "1", "-scale", "0.1", "-starts", "8", "-seed", "11", "-q", "-workers", "4"}
	first := runHgpart(t, args...)
	second := runHgpart(t, args...)
	if first != second {
		t.Errorf("two identical invocations differ\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestRefineThreadsInvariance extends the worker-count contract to
// intra-job parallelism: the synchronous-round parallel k-way refiner must
// emit byte-identical reports AND byte-identical assignment files at
// -refine-threads 1, 2, 4 and 8. Unlike -workers (which parallelizes
// independent starts), -refine-threads parallelizes the moves inside one
// refinement, so this is the end-to-end face of the kwayfm differential
// oracle tests.
func TestRefineThreadsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the hgpart binary")
	}
	// Same output path for every run: the report echoes it, and the report
	// comparison is exact.
	outFile := filepath.Join(t.TempDir(), "assign")
	run := func(threads string) (report, assignment string) {
		report = runHgpart(t,
			"-ibm", "1", "-scale", "0.1", "-k", "8", "-krefine",
			"-refine-threads", threads, "-starts", "2", "-seed", "23", "-q",
			"-o", outFile)
		raw, err := os.ReadFile(outFile)
		if err != nil {
			t.Fatalf("reading assignment file: %v", err)
		}
		return report, string(raw)
	}
	wantReport, wantAssign := run("1")
	if !strings.Contains(wantReport, "refine-threads=N") {
		t.Fatalf("report does not echo refine-threads:\n%s", wantReport)
	}
	for _, threads := range []string{"2", "4", "8"} {
		report, assign := run(threads)
		if report != wantReport {
			t.Errorf("-refine-threads=%s report differs from 1\n--- 1 ---\n%s--- %s ---\n%s",
				threads, wantReport, threads, report)
		}
		if assign != wantAssign {
			t.Errorf("-refine-threads=%s assignment file differs from 1", threads)
		}
	}
}

// The optimized arena engine must be a pure performance change: with the same
// seed, `-impl optimized` (the default) and `-impl reference` (the frozen seed
// implementation) must emit byte-identical reports — same cuts, same
// balances, same best-start indices — across every engine and the direct
// k-way refinement path. This is the end-to-end face of the package-level
// differential tests in internal/core and internal/kwayfm.
func TestImplEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the hgpart binary")
	}
	cases := [][]string{
		{"-engine", "ml", "-ibm", "1", "-scale", "0.1", "-starts", "6", "-seed", "17", "-q"},
		{"-engine", "flat", "-ibm", "1", "-scale", "0.1", "-starts", "6", "-seed", "17", "-q"},
		{"-engine", "clip", "-ibm", "1", "-scale", "0.1", "-starts", "6", "-seed", "17", "-q"},
		{"-k", "4", "-krefine", "-ibm", "1", "-scale", "0.1", "-starts", "2", "-seed", "19", "-q"},
	}
	for _, args := range cases {
		optimized := runHgpart(t, append([]string{"-impl", "optimized"}, args...)...)
		reference := runHgpart(t, append([]string{"-impl", "reference"}, args...)...)
		if optimized != reference {
			t.Errorf("%v: -impl optimized and -impl reference reports differ\n--- optimized ---\n%s--- reference ---\n%s",
				args, optimized, reference)
		}
	}
}
