// Command hgplace runs the top-down recursive min-cut bisection placer —
// the paper's driving application — on a netlist and reports half-perimeter
// wirelength, optionally writing a Bookshelf .pl placement file.
//
// Usage:
//
//	hgplace -ibm 1 -scale 0.1
//	hgplace -in design.hgr -tol 0.1 -pl out.pl
//	hgplace -nodes d.nodes -nets d.nets -pl out.pl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hgpart"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input netlist (.hgr or .netD)")
		nodesPath = flag.String("nodes", "", "Bookshelf .nodes file (with -nets)")
		netsPath  = flag.String("nets", "", "Bookshelf .nets file (with -nodes)")
		ibm       = flag.Int("ibm", 0, "generate ISPD98-like profile 1-18")
		scale     = flag.Float64("scale", 1.0, "downscale factor for -ibm")
		tol       = flag.Float64("tol", 0.1, "per-bisection balance tolerance")
		leaf      = flag.Int("leaf", 16, "max cells per leaf region")
		flat      = flag.Bool("flat", false, "disable the multilevel engine")
		quad      = flag.Bool("quad", false, "quadrisection (Suaris-Kedem) instead of alternating bisection")
		seed      = flag.Uint64("seed", 1, "random seed")
		plPath    = flag.String("pl", "", "write Bookshelf .pl placement to this file")
	)
	flag.Parse()

	if *scale <= 0 || *scale > 1 {
		fatal(fmt.Errorf("-scale %g out of range (0,1]", *scale))
	}
	if *tol <= 0 || *tol >= 1 {
		fatal(fmt.Errorf("-tol %g out of range (0,1)", *tol))
	}

	h, terminals, err := load(*inPath, *nodesPath, *netsPath, *ibm, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, hgpart.ComputeStats(h))
	if terminals > 0 {
		fmt.Fprintf(os.Stderr, "  (%d terminal nodes in the input)\n", terminals)
	}

	t0 := time.Now()
	pl, err := hgpart.Place(h, hgpart.PlacerConfig{
		MaxCellsPerRegion: *leaf,
		Tolerance:         *tol,
		DisableML:         *flat,
		Quadrisection:     *quad,
		Seed:              *seed,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t0)

	fmt.Printf("bisections=%d with_terminals=%d (%.0f%%)\n",
		pl.Bisections, pl.FixedTerminalInstances,
		100*float64(pl.FixedTerminalInstances)/float64(maxInt(1, pl.Bisections)))
	fmt.Printf("hpwl=%.3f (unit square)\n", pl.HPWL(h))
	fmt.Printf("time=%.3fs\n", elapsed.Seconds())

	if *plPath != "" {
		f, err := os.Create(*plPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := hgpart.WriteBookshelfPl(f, pl.X, pl.Y, 1000); err != nil {
			fatal(err)
		}
		fmt.Printf("placement written to %s\n", *plPath)
	}
}

func load(inPath, nodesPath, netsPath string, ibm int, scale float64, seed uint64) (*hgpart.Hypergraph, int, error) {
	switch {
	case nodesPath != "" && netsPath != "":
		nf, err := os.Open(nodesPath)
		if err != nil {
			return nil, 0, err
		}
		defer nf.Close()
		ef, err := os.Open(netsPath)
		if err != nil {
			return nil, 0, err
		}
		defer ef.Close()
		d, err := hgpart.ParseBookshelf(nf, ef, nodesPath)
		if err != nil {
			return nil, 0, err
		}
		terms := 0
		for _, t := range d.Terminal {
			if t {
				terms++
			}
		}
		return d.H, terms, nil
	case ibm > 0:
		spec, err := hgpart.IBMProfile(ibm)
		if err != nil {
			return nil, 0, err
		}
		if scale < 1 {
			spec = hgpart.Scaled(spec, scale)
		}
		if seed != 1 {
			spec.Seed = seed
		}
		h, err := hgpart.Generate(spec)
		return h, 0, err
	case inPath != "":
		f, err := os.Open(inPath)
		if err != nil {
			return nil, 0, err
		}
		defer f.Close()
		if strings.HasSuffix(inPath, ".hgr") {
			h, err := hgpart.ParseHGR(f, inPath)
			return h, 0, err
		}
		h, err := hgpart.ParseNetD(f, nil, inPath)
		return h, 0, err
	}
	return nil, 0, fmt.Errorf("need -in, -nodes/-nets, or -ibm")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgplace:", err)
	os.Exit(1)
}
