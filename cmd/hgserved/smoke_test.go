package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end gate behind `make serve-smoke`: build the
// real binary, boot it on an ephemeral port, check liveness, submit a
// request twice (computed then cached, byte-identical), and shut it down
// with SIGTERM expecting a clean graceful exit.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the daemon; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "hgserved")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-checkpoint-dir", filepath.Join(dir, "cp"),
	)
	var logs bytes.Buffer
	cmd.Stderr = &logs
	cmd.Stdout = &logs
	if err := cmd.Start(); err != nil {
		t.Fatalf("start hgserved: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	stopped := false
	defer func() {
		if stopped {
			return
		}
		cmd.Process.Kill()
		<-exited
	}()

	// The daemon writes its bound address only after Listen succeeds.
	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		select {
		case err := <-exited:
			t.Fatalf("hgserved exited before listening: %v\n%s", err, logs.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no addr file after 15s\n%s", logs.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v / %v", err, resp)
	}
	resp.Body.Close()

	post := func() (*http.Response, []byte) {
		resp, err := http.Post(base+"/v1/partition", "application/json",
			strings.NewReader(`{"benchmark":"ibm01","scale":0.1,"engine":"flat","starts":3,"seed":7}`))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}

	resp1, body1 := post()
	if resp1.StatusCode != 200 || resp1.Header.Get("X-Hgserved-Cache") != "miss" {
		t.Fatalf("first request: %d disposition %q\n%s",
			resp1.StatusCode, resp1.Header.Get("X-Hgserved-Cache"), body1)
	}
	resp2, body2 := post()
	if resp2.StatusCode != 200 || resp2.Header.Get("X-Hgserved-Cache") != "hit" {
		t.Fatalf("second request: %d disposition %q, want cache hit",
			resp2.StatusCode, resp2.Header.Get("X-Hgserved-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached response differs from computed:\n%s\nvs\n%s", body1, body2)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"hgserved_cache_hits_total 1", "hgserved_cache_misses_total 1"} {
		if !strings.Contains(mbuf.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mbuf.String())
		}
	}

	// SIGTERM: graceful drain, clean zero exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		stopped = true
		if err != nil {
			t.Fatalf("hgserved exited dirty after SIGTERM: %v\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("hgserved did not exit within 30s of SIGTERM\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "hgserved stopped") {
		t.Fatalf("no graceful-stop log line:\n%s", logs.String())
	}
	fmt.Println("serve-smoke ok:", addr)
}
