// Command hgserved runs the partitioning-as-a-service daemon: an HTTP
// server that accepts netlists (inline hMETIS/.netD text or named synthetic
// benchmarks) and partitions them through the fault-tolerant multistart
// harness on a bounded worker pool.
//
// Usage:
//
//	hgserved -addr :8080 -workers 2 -checkpoint-dir /var/lib/hgserved
//
// Endpoints:
//
//	POST   /v1/partition   submit a job (sync by default; "async": true for 202 + job id)
//	POST   /v1/trace       run one traced flat/clip start, returning per-pass diagnostics
//	GET    /v1/jobs        list retained jobs
//	GET    /v1/jobs/{id}   live status with best-so-far trajectory
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/stats       human-readable service summary
//	GET    /metrics        Prometheus text exposition
//	GET    /healthz        liveness
//	GET    /readyz         readiness (503 once draining)
//
// On SIGTERM/SIGINT the daemon drains gracefully: /readyz flips to 503
// while the listener still answers, queued jobs are cancelled, running jobs
// are interrupted with their completed starts journaled to -checkpoint-dir,
// and the listener closes only after all workers are idle (bounded by
// -drain-timeout). Resubmitting an interrupted request resumes its journal.
//
// Identical requests (same instance content, config and seed) are served
// from a content-addressed result cache; concurrent identical requests
// coalesce onto a single computation. Responses are deterministic: the same
// request yields byte-identical report bodies across processes and restarts.
//
// Cluster mode (DESIGN.md §12): -cluster-workers puts this node in
// coordinator mode, routing jobs to the listed workers by consistent
// hashing on the cache key, with heartbeat failover onto the shared
// -checkpoint-dir journals and graceful degradation to local computes when
// the whole fleet is unreachable. -peers makes a worker probe sibling
// caches before computing. Reports stay byte-identical at any topology.
//
// Network chaos (DESIGN.md §16): -net-chaos arms a seed-deterministic
// fault-injecting transport on every inter-node HTTP client (dispatch RPCs,
// peer cache probes, heartbeats) — refused connections, latency, torn or
// bit-corrupted bodies, blackholes. Internal responses carry a sha256
// integrity envelope, so corrupted bytes are detected and never served from
// or written into the result cache; per-worker circuit breakers and
// -dispatch-deadline keep the cluster deterministic while degraded.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hgpart/internal/chaos"
	"hgpart/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts and smoke tests)")
		workers      = flag.Int("workers", 2, "concurrent jobs")
		startWorkers = flag.Int("start-workers", 2, "max concurrent starts within one job")
		maxRefineT   = flag.Int("max-refine-threads", 8, "cap on a request's refine_threads; results are identical at any positive value (<=0 unclamped)")
		queueCap     = flag.Int("queue-cap", 256, "queued-job bound; submissions beyond it get 429")
		historyCap   = flag.Int("job-history", 512, "terminal jobs retained for GET /v1/jobs")
		retries      = flag.Int("retries", 1, "retry a panicking start up to this many times with a reseeded generator")
		cacheEntries = flag.Int("cache-entries", 4096, "result-cache entry bound (<=0 unbounded)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "result-cache byte bound (<=0 unbounded)")
		cpDir        = flag.String("checkpoint-dir", "", "journal running jobs' completed starts here; empty disables checkpointing")
		maxBody      = flag.Int64("max-body-bytes", 64<<20, "request body size bound")
		maxVertices  = flag.Int("max-vertices", 2_000_000, "reject instances with more vertices (<=0 disables)")
		maxPins      = flag.Int("max-pins", 20_000_000, "reject instances with more pins (<=0 disables)")
		stuckAfter   = flag.Duration("stuck-after", 2*time.Minute, "watchdog: cancel a job whose run makes no progress for this long (<=0 disables)")
		maxRequeues  = flag.Int("max-requeues", 1, "watchdog: requeue a stuck job this many times before failing it")
		drainTO      = flag.Duration("drain-timeout", 30*time.Second, "bound on the SIGTERM graceful drain")
		logJSON      = flag.Bool("log-json", false, "emit JSON logs instead of text")
		chaosSpec    = flag.String("chaos", "", "fault-injection spec for journal I/O, e.g. \"write:.jsonl:3:torn+kill\" (testing only)")
		chaosSeed    = flag.Uint64("chaos-seed", 1, "seed for probabilistic chaos rules")
		netChaosSpec = flag.String("net-chaos", "", "fault-injection spec for inter-node HTTP, e.g. \"net:/v1/partition:1:corrupt\" (testing only)")

		clusterWorkers  = flag.String("cluster-workers", "", "comma-separated worker addresses; non-empty runs this node as a cluster coordinator")
		peers           = flag.String("peers", "", "comma-separated sibling worker addresses whose caches are probed before computing")
		peerTimeout     = flag.Duration("peer-timeout", 250*time.Millisecond, "per-sibling cache probe bound")
		heartbeatEvery  = flag.Duration("heartbeat-interval", 500*time.Millisecond, "coordinator: worker readiness probe interval")
		dispatchRetries = flag.Int("dispatch-retries", 3, "coordinator: retry attempts per dispatch RPC before failing a job over")
		dispatchPer     = flag.Int("dispatch-per-worker", 2, "coordinator: concurrent dispatches per worker")
		dispatchDL      = flag.Duration("dispatch-deadline", 0, "coordinator: per-dispatch deadline, propagated to workers as X-Hg-Deadline (<=0 disables)")
	)
	flag.Parse()

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	if *cpDir != "" {
		if err := os.MkdirAll(*cpDir, 0o755); err != nil {
			fatal(log, "create checkpoint dir", err)
		}
	}

	cfg := service.DefaultConfig()
	cfg.Workers = *workers
	cfg.StartWorkers = *startWorkers
	cfg.MaxRefineThreads = *maxRefineT
	cfg.QueueCap = *queueCap
	cfg.HistoryCap = *historyCap
	cfg.MaxRetries = *retries
	cfg.CacheEntries = *cacheEntries
	cfg.CacheBytes = *cacheBytes
	cfg.CheckpointDir = *cpDir
	cfg.MaxBodyBytes = *maxBody
	cfg.MaxVertices = *maxVertices
	cfg.MaxPins = *maxPins
	cfg.StuckAfter = *stuckAfter
	cfg.MaxRequeues = *maxRequeues
	cfg.Logger = log
	cfg.Peers = splitAddrs(*peers)
	cfg.PeerTimeout = *peerTimeout
	cfg.Cluster = service.ClusterConfig{
		Workers:           splitAddrs(*clusterWorkers),
		HeartbeatInterval: *heartbeatEvery,
		DispatchRetries:   *dispatchRetries,
		DispatchPerWorker: *dispatchPer,
		RetrySeed:         *chaosSeed,
		DispatchDeadline:  *dispatchDL,
	}
	if *chaosSpec != "" {
		rules, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fatal(log, "parse -chaos", err)
		}
		cfg.FS = chaos.NewFaultFS(chaos.OS(), chaos.Config{Seed: *chaosSeed, Rules: rules})
		log.Warn("chaos fault injection armed on journal I/O", "spec", *chaosSpec, "seed", *chaosSeed)
	}
	if *netChaosSpec != "" {
		rules, err := chaos.ParseSpec(*netChaosSpec)
		if err != nil {
			fatal(log, "parse -net-chaos", err)
		}
		cfg.Transport = chaos.NewTransport(nil, chaos.Config{Seed: *chaosSeed, Rules: rules})
		log.Warn("chaos fault injection armed on inter-node HTTP", "spec", *netChaosSpec, "seed", *chaosSeed)
	}
	srv := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(log, "listen", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Written after Listen succeeds, so a reader holding the file holds a
		// connectable address.
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fatal(log, "write addr-file", err)
		}
	}
	mode := "single-node"
	switch {
	case *clusterWorkers != "":
		mode = "coordinator"
	case *peers != "":
		mode = "worker"
	}
	log.Info("hgserved listening", "addr", bound, "workers", *workers,
		"checkpoint_dir", *cpDir, "mode", mode)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case <-ctx.Done():
		log.Info("signal received; draining")
	case err := <-errc:
		fatal(log, "serve", err)
	}

	// Graceful sequence: readiness flips first (inside Drain), the listener
	// keeps answering /readyz and status queries while running jobs wind
	// down and checkpoint, and only then does the listener close.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Error("drain incomplete", "err", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Error("shutdown", "err", err)
	}
	log.Info("hgserved stopped")
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// fatal logs and exits; user-facing failures never panic.
func fatal(log *slog.Logger, msg string, err error) {
	log.Error(msg, "err", err)
	fmt.Fprintf(os.Stderr, "hgserved: %s: %v\n", msg, err)
	os.Exit(1)
}
