// Command hgconvert converts hypergraph netlists between the supported
// formats: hMETIS .hgr, ISPD98 .netD/.are, PaToH, and UCLA Bookshelf
// .nodes/.nets.
//
// Usage:
//
//	hgconvert -in design.hgr -out design           -to netd
//	hgconvert -in design.netD -are design.are -out d -to patoh
//	hgconvert -nodes d.nodes -nets d.nets -out d   -to hgr
//
// The output basename gets format-appropriate extensions appended.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hgpart"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input netlist (.hgr, .netD/.net, or .patoh by -from)")
		arePath   = flag.String("are", "", "ISPD98 .are areas for -in *.netD")
		nodesPath = flag.String("nodes", "", "Bookshelf .nodes (with -nets)")
		netsPath  = flag.String("nets", "", "Bookshelf .nets (with -nodes)")
		from      = flag.String("from", "", "input format override: hgr, netd, patoh")
		to        = flag.String("to", "hgr", "output format: hgr, netd, patoh, bookshelf")
		outPath   = flag.String("out", "", "output basename (required)")
	)
	flag.Parse()
	if *outPath == "" {
		fatal(fmt.Errorf("need -out <basename>"))
	}

	h, err := read(*inPath, *arePath, *nodesPath, *netsPath, *from)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, hgpart.ComputeStats(h))

	if err := write(h, *to, *outPath); err != nil {
		fatal(err)
	}
}

func read(inPath, arePath, nodesPath, netsPath, from string) (*hgpart.Hypergraph, error) {
	if nodesPath != "" && netsPath != "" {
		nf, err := os.Open(nodesPath)
		if err != nil {
			return nil, err
		}
		defer nf.Close()
		ef, err := os.Open(netsPath)
		if err != nil {
			return nil, err
		}
		defer ef.Close()
		d, err := hgpart.ParseBookshelf(nf, ef, nodesPath)
		if err != nil {
			return nil, err
		}
		return d.H, nil
	}
	if inPath == "" {
		return nil, fmt.Errorf("need -in or -nodes/-nets")
	}
	f, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	format := from
	if format == "" {
		switch {
		case strings.HasSuffix(inPath, ".hgr"):
			format = "hgr"
		case strings.HasSuffix(inPath, ".netD"), strings.HasSuffix(inPath, ".net"):
			format = "netd"
		case strings.HasSuffix(inPath, ".patoh"), strings.HasSuffix(inPath, ".u"):
			format = "patoh"
		default:
			return nil, fmt.Errorf("cannot infer format of %q; use -from", inPath)
		}
	}
	switch format {
	case "hgr":
		return hgpart.ParseHGR(f, inPath)
	case "netd":
		if arePath != "" {
			af, err := os.Open(arePath)
			if err != nil {
				return nil, err
			}
			defer af.Close()
			return hgpart.ParseNetD(f, af, inPath)
		}
		return hgpart.ParseNetD(f, nil, inPath)
	case "patoh":
		return hgpart.ParsePaToH(f, inPath)
	}
	return nil, fmt.Errorf("unknown input format %q", format)
}

func write(h *hgpart.Hypergraph, to, base string) error {
	create := func(path string) (*os.File, error) { return os.Create(path) }
	switch to {
	case "hgr":
		f, err := create(base + ".hgr")
		if err != nil {
			return err
		}
		defer f.Close()
		return hgpart.WriteHGR(f, h)
	case "netd":
		nf, err := create(base + ".netD")
		if err != nil {
			return err
		}
		defer nf.Close()
		if err := hgpart.WriteNetD(nf, h); err != nil {
			return err
		}
		af, err := create(base + ".are")
		if err != nil {
			return err
		}
		defer af.Close()
		return hgpart.WriteAre(af, h)
	case "patoh":
		f, err := create(base + ".patoh")
		if err != nil {
			return err
		}
		defer f.Close()
		return hgpart.WritePaToH(f, h)
	case "bookshelf":
		nf, err := create(base + ".nodes")
		if err != nil {
			return err
		}
		defer nf.Close()
		ef, err := create(base + ".nets")
		if err != nil {
			return err
		}
		defer ef.Close()
		return hgpart.WriteBookshelf(nf, ef, h, nil)
	}
	return fmt.Errorf("unknown output format %q", to)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgconvert:", err)
	os.Exit(1)
}
