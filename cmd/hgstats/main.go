// Command hgstats prints the instance statistics the paper's §2.1 calls the
// "salient attributes of real-world inputs" for one or more netlists or
// synthetic profiles.
//
// Usage:
//
//	hgstats circuit.hgr other.netD
//	hgstats -ibm all -scale 0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hgpart"
)

func main() {
	var (
		ibm   = flag.String("ibm", "", "profile number 1-18, or \"all\"")
		mcnc  = flag.String("mcnc", "", "MCNC profile name, or \"all\"")
		scale = flag.Float64("scale", 1.0, "downscale factor for -ibm")
		rent  = flag.Bool("rent", false, "also estimate the Rent exponent (recursive bisection)")
	)
	flag.Parse()

	if *scale <= 0 || *scale > 1 {
		fatal(fmt.Errorf("-scale %g out of range (0,1]", *scale))
	}

	report := func(h *hgpart.Hypergraph) {
		fmt.Print(hgpart.ComputeStats(h))
		if *rent {
			est, err := hgpart.RentAnalyze(h, hgpart.RentOptions{})
			if err != nil {
				fmt.Printf("  rent: %v\n", err)
			} else {
				fmt.Printf("  rent exponent p=%.3f t=%.2f (R2=%.2f, %d blocks)\n",
					est.P, est.T0, est.R2, len(est.Samples))
			}
		}
	}

	if *ibm != "" {
		var ids []int
		if *ibm == "all" {
			for i := 1; i <= 18; i++ {
				ids = append(ids, i)
			}
		} else {
			n, err := strconv.Atoi(*ibm)
			if err != nil {
				fatal(fmt.Errorf("bad -ibm %q", *ibm))
			}
			ids = []int{n}
		}
		for _, id := range ids {
			spec, err := hgpart.IBMProfile(id)
			if err != nil {
				fatal(err)
			}
			if *scale < 1 {
				spec = hgpart.Scaled(spec, *scale)
			}
			h, err := hgpart.Generate(spec)
			if err != nil {
				fatal(err)
			}
			report(h)
		}
		return
	}

	if *mcnc != "" {
		names := []string{*mcnc}
		if *mcnc == "all" {
			names = hgpart.MCNCNames()
		}
		for _, name := range names {
			spec, err := hgpart.MCNCProfile(name)
			if err != nil {
				fatal(err)
			}
			if *scale < 1 {
				spec = hgpart.Scaled(spec, *scale)
			}
			h, err := hgpart.Generate(spec)
			if err != nil {
				fatal(err)
			}
			report(h)
		}
		return
	}

	if flag.NArg() == 0 {
		fatal(fmt.Errorf("usage: hgstats [-ibm N|all] [files...]"))
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		var h *hgpart.Hypergraph
		if strings.HasSuffix(path, ".hgr") {
			h, err = hgpart.ParseHGR(f, path)
		} else {
			h, err = hgpart.ParseNetD(f, nil, path)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
		report(h)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgstats:", err)
	os.Exit(1)
}
