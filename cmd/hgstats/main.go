// Command hgstats prints the instance statistics the paper's §2.1 calls the
// "salient attributes of real-world inputs" for one or more netlists or
// synthetic profiles.
//
// Usage:
//
//	hgstats circuit.hgr other.netD
//	hgstats -ibm all -scale 0.1
//	hgstats -ibm 1 -scale 0.1 -features   # portfolio feature vector as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hgpart"
)

func main() {
	var (
		ibm      = flag.String("ibm", "", "profile number 1-18, or \"all\"")
		mcnc     = flag.String("mcnc", "", "MCNC profile name, or \"all\"")
		scale    = flag.Float64("scale", 1.0, "downscale factor for -ibm")
		rent     = flag.Bool("rent", false, "also estimate the Rent exponent (recursive bisection)")
		features = flag.Bool("features", false, "emit the portfolio feature vector and bucket as JSON instead of the stats table")
	)
	flag.Parse()

	if *scale <= 0 || *scale > 1 {
		fatal(fmt.Errorf("-scale %g out of range (0,1]", *scale))
	}
	if *features && *rent {
		fatal(fmt.Errorf("-features and -rent are mutually exclusive"))
	}

	report := func(h *hgpart.Hypergraph) {
		if *features {
			emitFeatures(h)
			return
		}
		fmt.Print(hgpart.ComputeStats(h))
		if *rent {
			est, err := hgpart.RentAnalyze(h, hgpart.RentOptions{})
			if err != nil {
				fmt.Printf("  rent: %v\n", err)
			} else {
				fmt.Printf("  rent exponent p=%.3f t=%.2f (R2=%.2f, %d blocks)\n",
					est.P, est.T0, est.R2, len(est.Samples))
			}
		}
	}

	if *ibm != "" {
		var ids []int
		if *ibm == "all" {
			for i := 1; i <= 18; i++ {
				ids = append(ids, i)
			}
		} else {
			n, err := strconv.Atoi(*ibm)
			if err != nil {
				fatal(fmt.Errorf("bad -ibm %q", *ibm))
			}
			ids = []int{n}
		}
		for _, id := range ids {
			spec, err := hgpart.IBMProfile(id)
			if err != nil {
				fatal(err)
			}
			if *scale < 1 {
				spec = hgpart.Scaled(spec, *scale)
			}
			h, err := hgpart.Generate(spec)
			if err != nil {
				fatal(err)
			}
			report(h)
		}
		return
	}

	if *mcnc != "" {
		names := []string{*mcnc}
		if *mcnc == "all" {
			names = hgpart.MCNCNames()
		}
		for _, name := range names {
			spec, err := hgpart.MCNCProfile(name)
			if err != nil {
				fatal(err)
			}
			if *scale < 1 {
				spec = hgpart.Scaled(spec, *scale)
			}
			h, err := hgpart.Generate(spec)
			if err != nil {
				fatal(err)
			}
			report(h)
		}
		return
	}

	if flag.NArg() == 0 {
		fatal(fmt.Errorf("usage: hgstats [-ibm N|all] [files...]"))
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		var h *hgpart.Hypergraph
		if strings.HasSuffix(path, ".hgr") {
			h, err = hgpart.ParseHGR(f, path)
		} else {
			h, err = hgpart.ParseNetD(f, nil, path)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
		report(h)
	}
}

// emitFeatures prints one JSON document per instance: the deterministic
// portfolio feature vector plus its discretized bucket key — the exact
// inputs the portfolio scheduler buckets on, so operators can see which
// bucket (and therefore which stored arm statistics) a netlist lands in.
func emitFeatures(h *hgpart.Hypergraph) {
	if err := writeFeatures(os.Stdout, h); err != nil {
		fatal(err)
	}
}

// writeFeatures renders the -features JSON document; the golden-file test
// pins its exact bytes.
func writeFeatures(w io.Writer, h *hgpart.Hypergraph) error {
	f := hgpart.ExtractPortfolioFeatures(h)
	doc := struct {
		hgpart.PortfolioFeatures
		Bucket string `json:"bucket"`
	}{f, hgpart.PortfolioBucketOf(f).Key()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgstats:", err)
	os.Exit(1)
}
