package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hgpart"
)

// TestFeaturesGolden pins the -features JSON byte-for-byte against checked-in
// golden files: the feature vector feeds the portfolio scheduler's bucketing,
// so an accidental change to its fields or formatting must fail loudly, not
// silently reshuffle which bucket instances land in. Regenerate with
// UPDATE_GOLDEN=1 go test ./cmd/hgstats.
func TestFeaturesGolden(t *testing.T) {
	cases := []struct {
		name string
		spec func() (hgpart.GenSpec, error)
	}{
		{"ibm01_x005", func() (hgpart.GenSpec, error) {
			s, err := hgpart.IBMProfile(1)
			return hgpart.Scaled(s, 0.05), err
		}},
		{"mcnc_struct_x05", func() (hgpart.GenSpec, error) {
			s, err := hgpart.MCNCProfile("struct")
			return hgpart.Scaled(s, 0.5), err
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			spec, err := c.spec()
			if err != nil {
				t.Fatal(err)
			}
			h, err := hgpart.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := writeFeatures(&buf, h); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", c.name+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("-features output drifted from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}
