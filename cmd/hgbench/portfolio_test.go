package main

import (
	"bytes"
	"testing"
)

// TestPortfolioGate runs the -portfolio-gate suite twice: it must pass
// (exit code 0) and — because every case is a pure function of the pinned
// (specs, seed, starts) — produce byte-identical output on the rerun. A
// byte of drift here means the scheduler lost determinism, which would
// break the service's content-addressed result cache.
func TestPortfolioGate(t *testing.T) {
	if testing.Short() {
		t.Skip("portfolio gate races full schedules over six profiles; skipped in -short")
	}
	var first, second bytes.Buffer
	if rc := runPortfolioGate(&first); rc != 0 {
		t.Fatalf("portfolio gate exit code %d, want 0:\n%s", rc, first.String())
	}
	if rc := runPortfolioGate(&second); rc != 0 {
		t.Fatalf("portfolio gate rerun exit code %d, want 0:\n%s", rc, second.String())
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("portfolio gate output not deterministic:\nrun 1:\n%s\nrun 2:\n%s",
			first.String(), second.String())
	}
	t.Logf("gate output:\n%s", first.String())
}
