package main

// The -portfolio-gate mode is the quality gate for the adaptive portfolio
// scheduler (DESIGN.md §15): over a deterministic suite of scaled generator
// profiles, racing the full arm portfolio must never lose to the fixed
// default beyond a bounded racing overhead. The baseline is a single-arm
// "portfolio" of the default arm run through the identical schedule
// machinery (same race/commit/polish seeds), so the comparison isolates
// exactly one variable: whether racing the extra arms pays for itself.
//
// Pass criteria (METHODOLOGY.md "Speed-dependent rankings"):
//   - final cut <= fixed default on at least half the suite, and
//   - total work <= maxOverhead x the fixed default's on every case.

import (
	"context"
	"fmt"
	"io"

	"hgpart/internal/gen"
	"hgpart/internal/partition"
	"hgpart/internal/portfolio"
)

// gateStarts/gateSeed/gateTolerance pin the gate's schedule; the suite is a
// pure function of them, so reruns are byte-comparable.
const (
	gateStarts    = 6
	gateSeed      = 17
	gateTolerance = 0.10
	// maxOverhead bounds portfolio work relative to the fixed default.
	// Racing five extra arms for one start each costs well under 1x the
	// default's own six ML starts on every profile class in the suite
	// (flat arms are far cheaper per start than multilevel); 2.5x leaves
	// headroom without letting the race eat the commit budget.
	maxOverhead = 2.5
)

// gateSuite returns the scaled profiles the gate races: three IBM-like
// instances (macros, global nets, skewed areas) and three MCNC-like ones
// (small, unit-area) — both instance classes the paper says a reporting
// methodology must separate.
func gateSuite() ([]gen.Spec, error) {
	specs := make([]gen.Spec, 0, 6)
	for _, c := range []struct {
		ibm   int
		scale float64
	}{{1, 0.05}, {3, 0.03}, {7, 0.015}} {
		s, err := gen.IBMProfile(c.ibm)
		if err != nil {
			return nil, err
		}
		specs = append(specs, gen.Scaled(s, c.scale))
	}
	for _, c := range []struct {
		name  string
		scale float64
	}{{"fract", 1}, {"prim1", 1}, {"struct", 0.5}} {
		s, err := gen.MCNCProfile(c.name)
		if err != nil {
			return nil, err
		}
		if c.scale < 1 {
			s = gen.Scaled(s, c.scale)
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// runPortfolioGate races the suite and returns a process exit code: 0 when
// the gate holds, 1 when it fails, 2 on setup errors.
func runPortfolioGate(w io.Writer) int {
	specs, err := gateSuite()
	if err != nil {
		fmt.Fprintf(w, "hgbench: portfolio gate: %v\n", err)
		return 2
	}
	arms := portfolio.DefaultArms()
	full := &portfolio.Scheduler{Arms: arms}
	fixed := &portfolio.Scheduler{Arms: arms[:1]}
	ctx := context.Background()

	fmt.Fprintf(w, "portfolio gate: starts=%d seed=%d tol=%g arms=%d vs fixed %q\n",
		gateStarts, gateSeed, gateTolerance, len(arms), arms[0].Name)
	fmt.Fprintf(w, "%-16s %10s %10s %-14s %8s\n",
		"case", "fixed cut", "port cut", "winner arm", "overhead")

	wins := 0
	pass := true
	for _, spec := range specs {
		h, err := gen.Generate(spec)
		if err != nil {
			fmt.Fprintf(w, "hgbench: portfolio gate: %s: %v\n", spec.Name, err)
			return 2
		}
		bal := partition.NewBalance(h.TotalVertexWeight(), gateTolerance)
		base, err := fixed.Run(ctx, h, bal, gateSeed, gateStarts, 0)
		if err != nil {
			fmt.Fprintf(w, "hgbench: portfolio gate: %s: fixed default: %v\n", spec.Name, err)
			return 2
		}
		port, err := full.Run(ctx, h, bal, gateSeed, gateStarts, 0)
		if err != nil {
			fmt.Fprintf(w, "hgbench: portfolio gate: %s: portfolio: %v\n", spec.Name, err)
			return 2
		}
		overhead := float64(port.TotalWork) / float64(base.TotalWork)
		winner := port.Race.Arms[port.Race.Winner].Name
		mark := ""
		if port.Final.Cut <= base.Final.Cut {
			wins++
		} else {
			mark = "  (lost)"
		}
		if overhead > maxOverhead {
			pass = false
			mark += fmt.Sprintf("  OVERHEAD > %gx", maxOverhead)
		}
		fmt.Fprintf(w, "%-16s %10d %10d %-14s %7.2fx%s\n",
			spec.Name, base.Final.Cut, port.Final.Cut, winner, overhead, mark)
	}
	need := (len(specs) + 1) / 2
	if wins < need {
		pass = false
	}
	fmt.Fprintf(w, "portfolio gate: %d/%d cases at or below the fixed default (need >= %d), overhead cap %gx\n",
		wins, len(specs), need, maxOverhead)
	if !pass {
		fmt.Fprintln(w, "portfolio gate: FAIL")
		return 1
	}
	fmt.Fprintln(w, "portfolio gate: ok")
	return 0
}
