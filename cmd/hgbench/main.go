// Command hgbench runs the pinned performance micro-suite (internal/perf)
// and reports ns/move and allocs/move for the frozen reference FM
// implementations versus the optimized arena engines.
//
// Typical uses:
//
//	hgbench -out BENCH_pr3.json                # refresh the committed baseline
//	hgbench -reps 3 -warmup 1 \
//	        -check BENCH_pr3.json -assert-zero-allocs
//	                                           # CI smoke: fail on >10% ns/move
//	                                           # regression or any steady-state
//	                                           # allocation in a pinned case
//
// The emitted JSON carries no timestamps or host identity — only schema,
// toolchain, platform and measured numbers — so reruns on the same machine
// and toolchain are comparable byte-for-byte up to timing jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hgpart/internal/perf"
)

func main() {
	var (
		reps            = flag.Int("reps", 5, "measured repetitions per case (ns/move is the median)")
		warmup          = flag.Int("warmup", 2, "discarded warmup runs per case (sizes the arenas)")
		out             = flag.String("out", "", "write the JSON report to this file")
		check           = flag.String("check", "", "compare against a committed baseline report and fail on regression")
		tolerance       = flag.Float64("tolerance", 0.10, "allowed fractional ns/move regression in -check mode")
		assertZeroAlloc = flag.Bool("assert-zero-allocs", false, "fail unless steady-state cases measured exactly 0 allocs/move")
		assertSpeedups  = flag.Bool("assert-speedups", false, "fail unless parallel cases met their speedup targets (full targets arm only on hosts with enough CPUs)")
		portfolioGate   = flag.Bool("portfolio-gate", false, "run the portfolio-vs-fixed-default quality gate instead of the perf micro-suite")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "hgbench: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *portfolioGate {
		os.Exit(runPortfolioGate(os.Stdout))
	}
	if *reps < 1 || *warmup < 0 {
		fmt.Fprintln(os.Stderr, "hgbench: need -reps >= 1 and -warmup >= 0")
		os.Exit(2)
	}

	// Read the baseline before measuring anything: a missing or malformed
	// -check file should fail in milliseconds, not after the full suite.
	var baseline perf.Report
	if *check != "" {
		var err error
		baseline, err = readReport(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hgbench: %v\n", err)
			os.Exit(1)
		}
		if baseline.Suite != perf.MicroSuiteName {
			fmt.Fprintf(os.Stderr, "hgbench: baseline suite %q does not match current suite %q\n",
				baseline.Suite, perf.MicroSuiteName)
			os.Exit(1)
		}
	}

	runner := perf.Runner{Warmup: *warmup, Reps: *reps}
	cases := perf.MicroSuite()
	report, err := runner.RunSuite(perf.MicroSuiteName, cases)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hgbench: %v\n", err)
		os.Exit(1)
	}

	printTable(report)

	failed := false
	if *assertZeroAlloc {
		if problems := perf.CheckZeroAllocs(report, cases); len(problems) != 0 {
			fmt.Fprintf(os.Stderr, "hgbench: zero-alloc assertion failed:\n  %s\n", strings.Join(problems, "\n  "))
			failed = true
		} else {
			fmt.Println("zero-alloc assertion: ok")
		}
	}
	if *assertSpeedups {
		if problems := perf.CheckSpeedups(report, cases); len(problems) != 0 {
			fmt.Fprintf(os.Stderr, "hgbench: speedup assertion failed:\n  %s\n", strings.Join(problems, "\n  "))
			failed = true
		} else {
			fmt.Println("speedup assertion: ok")
		}
	}
	if *check != "" {
		if problems := perf.CheckRegression(report, baseline, *tolerance); len(problems) != 0 {
			fmt.Fprintf(os.Stderr, "hgbench: regression check against %s failed:\n  %s\n",
				*check, strings.Join(problems, "\n  "))
			failed = true
		} else {
			fmt.Printf("regression check against %s: ok (tolerance %.0f%%)\n", *check, *tolerance*100)
		}
	}
	if *out != "" {
		if err := writeReport(*out, report); err != nil {
			fmt.Fprintf(os.Stderr, "hgbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if failed {
		os.Exit(1)
	}
}

func printTable(r perf.Report) {
	fmt.Printf("suite %s  %s %s/%s  warmup=%d reps=%d\n",
		r.Suite, r.GoVersion, r.GOOS, r.GOARCH, r.Warmup, r.Reps)
	fmt.Printf("%-26s %12s %12s %8s %14s %10s\n",
		"case", "ref ns/move", "opt ns/move", "speedup", "opt allocs/mv", "moves")
	for _, c := range r.Cases {
		fmt.Printf("%-26s %12.1f %12.1f %7.2fx %14.6f %10d\n",
			c.Name, c.Reference.NsPerMove, c.Optimized.NsPerMove, c.Speedup,
			c.Optimized.AllocsPerMove, c.Optimized.Moves)
	}
	fmt.Printf("geomean speedup: %.2fx\n", r.GeomeanSpeedup)
}

func readReport(path string) (perf.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return perf.Report{}, err
	}
	var r perf.Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return perf.Report{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if r.Schema != perf.SchemaV1 {
		return perf.Report{}, fmt.Errorf("%s: unsupported schema %q (want %q)", path, r.Schema, perf.SchemaV1)
	}
	return r, nil
}

func writeReport(path string, r perf.Report) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
