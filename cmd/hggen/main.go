// Command hggen generates synthetic ISPD98-like benchmark instances and
// writes them in hMETIS (.hgr) or ISPD98 (.netD + .are) format.
//
// Usage:
//
//	hggen -ibm 1 -scale 0.25 -format hgr -o ibm01q.hgr
//	hggen -cells 20000 -nets 22000 -avgnet 3.8 -format netd -o custom
//
// With -format netd, two files are written: <o>.netD and <o>.are.
package main

import (
	"flag"
	"fmt"
	"os"

	"hgpart"
)

func main() {
	var (
		ibm     = flag.Int("ibm", 0, "ISPD98 profile number 1-18 (0 = use -cells/-nets)")
		scale   = flag.Float64("scale", 1.0, "downscale factor in (0,1]")
		cells   = flag.Int("cells", 10000, "cell count (when -ibm 0)")
		nets    = flag.Int("nets", 11000, "net count (when -ibm 0)")
		avgnet  = flag.Float64("avgnet", 3.6, "target average net size (when -ibm 0)")
		unit    = flag.Bool("unit", false, "unit areas (MCNC-style) instead of actual areas")
		seed    = flag.Uint64("seed", 1, "generator seed")
		format  = flag.String("format", "hgr", "output format: hgr or netd")
		outPath = flag.String("o", "", "output path (stdout for hgr if empty)")
	)
	flag.Parse()

	if *scale <= 0 || *scale > 1 {
		fatal(fmt.Errorf("-scale %g out of range (0,1]", *scale))
	}

	var spec hgpart.GenSpec
	if *ibm > 0 {
		s, err := hgpart.IBMProfile(*ibm)
		if err != nil {
			fatal(err)
		}
		spec = s
	} else {
		spec = hgpart.GenSpec{
			Name:          fmt.Sprintf("custom-%dc", *cells),
			Cells:         *cells,
			Nets:          *nets,
			AvgNetSize:    *avgnet,
			NumMacros:     *cells / 400,
			MaxMacroFrac:  0.05,
			NumGlobalNets: 2,
			GlobalNetFrac: 0.01,
			Locality:      2,
		}
	}
	if *scale < 1 {
		spec = hgpart.Scaled(spec, *scale)
	}
	spec.UnitArea = *unit
	if *seed != 1 {
		spec.Seed = *seed
	}

	h, err := hgpart.Generate(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, hgpart.ComputeStats(h))

	switch *format {
	case "hgr":
		w := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := hgpart.WriteHGR(w, h); err != nil {
			fatal(err)
		}
	case "netd":
		if *outPath == "" {
			fatal(fmt.Errorf("-format netd requires -o <basename>"))
		}
		nf, err := os.Create(*outPath + ".netD")
		if err != nil {
			fatal(err)
		}
		defer nf.Close()
		if err := hgpart.WriteNetD(nf, h); err != nil {
			fatal(err)
		}
		af, err := os.Create(*outPath + ".are")
		if err != nil {
			fatal(err)
		}
		defer af.Close()
		if err := hgpart.WriteAre(af, h); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q (hgr or netd)", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hggen:", err)
	os.Exit(1)
}
