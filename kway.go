package hgpart

import (
	"context"

	"hgpart/internal/kway"
	"hgpart/internal/kwayfm"
	"hgpart/internal/objective"
	"hgpart/internal/partition"
	"hgpart/internal/rng"
)

// K-way partitioning and general objective evaluation, re-exported from
// internal/kway and internal/objective.

type (
	// KWayConfig controls recursive-bisection k-way partitioning.
	KWayConfig = kway.Config
	// KWayResult reports a k-way partitioning.
	KWayResult = kway.Result
	// Assignment is a k-way partition: part index per vertex.
	Assignment = objective.Assignment
)

// PartitionKWay splits h into k parts by recursive min-cut bisection,
// using the dummy-vertex trick for non-power-of-two k.
func PartitionKWay(h *Hypergraph, k int, cfg KWayConfig, r *RNG) (KWayResult, error) {
	return kway.Partition(h, k, cfg, r)
}

// KWayRefineConfig controls direct (Sanchis-style) k-way FM refinement.
type KWayRefineConfig = kwayfm.Config

// K-way refinement objectives.
const (
	CutObjective          = kwayfm.CutObjective
	ConnectivityObjective = kwayfm.ConnectivityObjective
)

// RefineKWay improves an existing k-way assignment in place with direct
// k-way FM moves and returns (initial, final) objective values.
func RefineKWay(h *Hypergraph, parts Assignment, k int, cfg KWayRefineConfig, r *RNG) (initial, final int64, err error) {
	res, err := kwayfm.Refine(h, parts, k, cfg, r)
	if err != nil {
		return 0, 0, err
	}
	return res.Initial, res.Final, nil
}

type (
	// KWayParConfig controls synchronous-round parallel k-way refinement.
	KWayParConfig = kwayfm.ParConfig
	// KWayParResult reports a parallel refinement run; every field is
	// independent of the thread count.
	KWayParResult = kwayfm.ParResult
)

// ParRefineKWay improves an existing k-way assignment in place with the
// deterministic synchronous-round parallel refiner. The result is
// byte-identical for every cfg.Threads value; ctx is polled at round
// boundaries and a cancelled run still leaves parts legal.
func ParRefineKWay(ctx context.Context, h *Hypergraph, parts Assignment, k int, cfg KWayParConfig) (KWayParResult, error) {
	return kwayfm.ParRefine(ctx, h, parts, k, cfg)
}

// CutSize returns the weighted number of nets spanning more than one part.
func CutSize(h *Hypergraph, a Assignment) int64 { return objective.CutSize(h, a) }

// ConnectivityMinusOne returns sum over nets of w(e)*(lambda(e)-1).
func ConnectivityMinusOne(h *Hypergraph, a Assignment) int64 {
	return objective.ConnectivityMinusOne(h, a)
}

// SumOfExternalDegrees returns the SOED objective over cut nets.
func SumOfExternalDegrees(h *Hypergraph, a Assignment) int64 {
	return objective.SumOfExternalDegrees(h, a)
}

// RatioCut returns the Wei-Cheng ratio cut of a 2-way assignment.
func RatioCut(h *Hypergraph, a Assignment) float64 { return objective.RatioCut(h, a) }

// ScaledCost returns the Chan-Schlag-Zien scaled cost of a k-way assignment.
func ScaledCost(h *Hypergraph, a Assignment, k int) float64 {
	return objective.ScaledCost(h, a, k)
}

// Absorption returns the Sun-Sechen absorption metric (higher is better).
func Absorption(h *Hypergraph, a Assignment, k int) float64 {
	return objective.Absorption(h, a, k)
}

// Imbalance returns max part weight relative to the ideal, minus one.
func Imbalance(h *Hypergraph, a Assignment, k int) float64 {
	return objective.Imbalance(h, a, k)
}

// PartWeights returns total vertex weight per part.
func PartWeights(h *Hypergraph, a Assignment, k int) []int64 {
	return objective.PartWeights(h, a, k)
}

// BisectFixed partitions h into two sides with the given fixed-side vector
// (entries FreeVertex, 0 or 1) using the fixed-vertex multilevel engine —
// the instance class §2.1 of the paper argues real placement flows produce.
func BisectFixed(h *Hypergraph, fixedSide []int8, tolerance float64, seed uint64) (*Partition, MLStats) {
	bal := NewBalance(h.TotalVertexWeight(), tolerance)
	ml := NewMLPartitioner(h, MLConfig{Refine: StrongFMConfig(false)}, bal)
	return ml.PartitionFixed(fixedSide, rng.New(seed))
}

// FreeVertex marks an unconstrained vertex in fixed-side vectors.
const FreeVertex = partition.Free
