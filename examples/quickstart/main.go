// Quickstart: generate an ISPD98-like netlist, bisect it with the
// multilevel engine, and print cut and balance.
package main

import (
	"fmt"
	"log"

	"hgpart"
)

func main() {
	// A 10%-scale synthetic stand-in for ISPD98 ibm01 (actual cell areas,
	// macro blocks, a couple of clock-like global nets).
	spec := hgpart.Scaled(hgpart.MustIBMProfile(1), 0.10)
	h := hgpart.MustGenerate(spec)
	fmt.Print(hgpart.ComputeStats(h))

	// Bisect with the multilevel engine: 4 independent starts, keep the
	// best, V-cycle it — at the paper's standard 2% balance tolerance.
	p, res, err := hgpart.Bisect(h, hgpart.BisectOptions{
		Tolerance: 0.02,
		Starts:    4,
		Engine:    hgpart.EngineML,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	total := h.TotalVertexWeight()
	fmt.Printf("\ncut = %d nets\n", res.Cut)
	fmt.Printf("side areas: %d (%.2f%%) / %d (%.2f%%)\n",
		p.Area(0), 100*float64(p.Area(0))/float64(total),
		p.Area(1), 100*float64(p.Area(1))/float64(total))
	fmt.Printf("wall time %.3fs, normalized CPU %.3fs\n",
		res.Seconds, float64(res.Work)/2e6)

	// Compare against a tuned flat FM from the same API.
	_, flatRes, err := hgpart.Bisect(h, hgpart.BisectOptions{
		Tolerance: 0.02,
		Starts:    4,
		Engine:    hgpart.EngineFlatFM,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflat FM with the same budget: cut = %d (ML is the stronger engine)\n", flatRes.Cut)
}
