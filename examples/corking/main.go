// Corking: reproduces the paper's §2.3 case study. On actual-area
// instances with macro cells and a tight balance tolerance, CLIP starts
// every pass with all moves in the zero-gain bucket; if a huge cell sits at
// the head of that bucket it is illegal to move and "corks" the pass. The
// fix costs nothing: never insert cells larger than the balance slack.
//
// The example also shows why the bug stayed hidden: in unit-area mode
// (the historical MCNC benchmarking regime) guarded and unguarded CLIP are
// indistinguishable.
package main

import (
	"fmt"

	"hgpart"
)

func run(h *hgpart.Hypergraph, tol float64, guard bool, r *hgpart.RNG) (float64, float64) {
	bal := hgpart.NewBalance(h.TotalVertexWeight(), tol)
	cfg := hgpart.StrongFMConfig(true) // tuned CLIP ...
	cfg.CorkGuard = guard              // ... with the guard switchable
	heur := hgpart.NewFlatHeuristic("clip", h, cfg, bal, r.Split())
	const starts = 20
	samples, _ := hgpart.MultistartSamples(heur, starts, r.Split())
	mn, sum := float64(samples[0].Cut), 0.0
	for _, s := range samples {
		c := float64(s.Cut)
		if c < mn {
			mn = c
		}
		sum += c
	}
	return mn, sum / float64(len(samples))
}

func main() {
	r := hgpart.NewRNG(99)

	// Actual-area instance with macro cells (ibm02-like has the biggest
	// macros in the suite: largest cell ~12% of total area).
	spec := hgpart.Scaled(hgpart.MustIBMProfile(2), 0.10)
	actual := hgpart.MustGenerate(spec)

	// The same instance in unit-area mode: the MCNC-style regime.
	unitSpec := spec
	unitSpec.UnitArea = true
	unitSpec.Name = spec.Name + "-unit"
	unit := hgpart.MustGenerate(unitSpec)

	fmt.Println("CLIP FM, 20 single starts, min/avg cut:")
	fmt.Printf("%-28s %12s %12s\n", "instance / tolerance", "unguarded", "guarded")
	for _, tol := range []float64{0.02, 0.10} {
		mnU, avgU := run(actual, tol, false, r)
		mnG, avgG := run(actual, tol, true, r)
		fmt.Printf("%-28s %5.0f/%-6.0f %5.0f/%-6.0f\n",
			fmt.Sprintf("%s @ %.0f%%", actual.Name, tol*100), mnU, avgU, mnG, avgG)
	}
	for _, tol := range []float64{0.02, 0.10} {
		mnU, avgU := run(unit, tol, false, r)
		mnG, avgG := run(unit, tol, true, r)
		fmt.Printf("%-28s %5.0f/%-6.0f %5.0f/%-6.0f\n",
			fmt.Sprintf("%s @ %.0f%%", unit.Name, tol*100), mnU, avgU, mnG, avgG)
	}

	fmt.Println("\nOn actual areas the unguarded CLIP is badly hurt (corking);")
	fmt.Println("on unit areas the two are equivalent — which is exactly how an")
	fmt.Println("incomplete benchmark suite masked the defect for years.")
}
