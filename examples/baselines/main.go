// Baselines: the paper's "Do measure with many instruments" in practice.
// Compares four independent solvers on the same instances:
//
//   - tuned flat FM (move-based),
//   - the multilevel engine (move-based, hierarchical),
//   - spectral bisection (an entirely different algorithm family),
//   - and, on a tiny instance, the branch-and-bound optimum as the
//     absolute yardstick.
package main

import (
	"fmt"
	"log"

	"hgpart"
)

func main() {
	// Part 1: heuristics vs. proven optimum on a tiny instance.
	tiny := hgpart.MustGenerate(hgpart.GenSpec{
		Name: "tiny", Cells: 24, Nets: 40, AvgNetSize: 2.8,
		Locality: 2, Seed: 11,
	})
	bal := hgpart.NewBalance(tiny.TotalVertexWeight(), 0.2)
	opt, err := hgpart.ExactBisect(tiny, bal, hgpart.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiny instance (%d cells, %d nets): proven optimal cut = %d (%d B&B nodes)\n",
		tiny.NumVertices(), tiny.NumEdges(), opt.Cut, opt.Nodes)

	_, fmRes, err := hgpart.Bisect(tiny, hgpart.BisectOptions{
		Tolerance: 0.2, Starts: 10, Engine: hgpart.EngineFlatFM, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat FM best-of-10: %d (gap %+d)\n\n", fmRes.Cut, fmRes.Cut-opt.Cut)

	// Part 2: three heuristic families on a realistic instance.
	h := hgpart.MustGenerate(hgpart.Scaled(hgpart.MustIBMProfile(1), 0.10))
	bal = hgpart.NewBalance(h.TotalVertexWeight(), 0.02)
	fmt.Printf("%s: %d cells, %d nets\n", h.Name, h.NumVertices(), h.NumEdges())
	fmt.Printf("%-28s %8s\n", "solver", "cut")

	_, sres, err := hgpart.SpectralBisect(h, bal, hgpart.SpectralOptions{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %8d\n", "spectral (Fiedler sweep)", sres.Cut)

	for _, cfg := range []struct {
		name   string
		engine hgpart.EngineKind
	}{
		{"flat FM (1 start)", hgpart.EngineFlatFM},
		{"flat CLIP (1 start)", hgpart.EngineFlatCLIP},
		{"multilevel (1 start)", hgpart.EngineML},
	} {
		_, res, err := hgpart.Bisect(h, hgpart.BisectOptions{
			Tolerance: 0.02, Starts: 1, Engine: cfg.engine, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8d\n", cfg.name, res.Cut)
	}

	// Part 3: spectral + FM hybrid — the eigenvector as an initial
	// solution, polished by move-based refinement (a classic combination).
	p, _, err := hgpart.SpectralBisect(h, bal, hgpart.SpectralOptions{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	eng := hgpart.NewFMEngine(h, hgpart.StrongFMConfig(false), bal, hgpart.NewRNG(6))
	res := eng.Run(p)
	fmt.Printf("%-28s %8d\n", "spectral + FM polish", res.Cut)
	fmt.Println("\nIndependent instruments agreeing on the ranking is what makes an")
	fmt.Println("experimental conclusion robust — the point of §2.3 of the paper.")
}
