// K-way: partitions a netlist into k parts by recursive bisection and
// reports the alternative objective functions the paper's problem statement
// names (cut size, connectivity, SOED, scaled cost, absorption) — the same
// solution looks very different under different objectives, which is why
// "apples to apples" comparisons must pin the objective down.
package main

import (
	"fmt"
	"log"

	"hgpart"
)

func main() {
	h := hgpart.MustGenerate(hgpart.Scaled(hgpart.MustIBMProfile(3), 0.10))
	fmt.Print(hgpart.ComputeStats(h))
	fmt.Println()

	fmt.Printf("%3s %10s %12s %8s %12s %12s %10s\n",
		"k", "cut", "lambda-1", "SOED", "scaledcost", "absorption", "imbalance")
	for _, k := range []int{2, 3, 4, 6, 8} {
		res, err := hgpart.PartitionKWay(h, k, hgpart.KWayConfig{
			Tolerance: 0.05,
			Starts:    2,
		}, hgpart.NewRNG(uint64(100+k)))
		if err != nil {
			log.Fatal(err)
		}
		a := res.Parts
		fmt.Printf("%3d %10d %12d %8d %12.6f %12.1f %9.1f%%\n",
			k,
			res.CutNets,
			res.ConnectivityMinusOne,
			hgpart.SumOfExternalDegrees(h, a),
			hgpart.ScaledCost(h, a, k),
			hgpart.Absorption(h, a, k),
			100*res.Imbalance,
		)
	}

	fmt.Println("\nNote how cut size and connectivity diverge as k grows: a net")
	fmt.Println("spanning 4 parts counts once in cut size but 3 times in lambda-1.")
	fmt.Println("Absorption falls as the partition fragments nets across parts.")
}
