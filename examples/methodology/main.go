// Methodology: the paper's reporting practices in action. Compares three
// heuristics on one instance using best-so-far expectations, a
// non-dominated (cost, runtime) frontier, and a Mann-Whitney significance
// test — instead of bare "best of 100 starts" numbers.
package main

import (
	"fmt"

	"hgpart"
)

func main() {
	h := hgpart.MustGenerate(hgpart.Scaled(hgpart.MustIBMProfile(1), 0.10))
	bal := hgpart.NewBalance(h.TotalVertexWeight(), 0.02)
	r := hgpart.NewRNG(2026)

	heuristics := []hgpart.Heuristic{
		hgpart.NewFlatHeuristic("flat-LIFO", h, hgpart.StrongFMConfig(false), bal, r.Split()),
		hgpart.NewFlatHeuristic("flat-CLIP", h, hgpart.StrongFMConfig(true), bal, r.Split()),
		hgpart.NewMLHeuristic("ML", h, hgpart.MLConfig{Refine: hgpart.StrongFMConfig(false)}, bal, 0),
	}

	const starts = 30
	type series struct {
		name     string
		cuts     []float64
		meanSecs float64
	}
	var all []series
	for _, heur := range heuristics {
		samples, best := hgpart.MultistartSamples(heur, starts, r.Split())
		s := series{name: heur.Name()}
		for _, o := range samples {
			s.cuts = append(s.cuts, float64(o.Cut))
			s.meanSecs += float64(o.Work) / 2e6 // normalized seconds
		}
		s.meanSecs /= float64(len(samples))
		all = append(all, s)
		mn, avg := minAvg(s.cuts)
		fmt.Printf("%-10s %d starts: min %.0f  avg %.1f  best-start cut %d  ~%.4f norm-sec/start\n",
			heur.Name(), starts, mn, avg, best.Cut, s.meanSecs)
	}

	// (cost, runtime) performance points at several start counts, and the
	// non-dominated frontier: "no one would ever choose a dominated point".
	fmt.Println("\nPerformance points (expected best cut vs CPU budget):")
	fmt.Printf("%-10s %8s %12s %12s\n", "heuristic", "starts", "budget(s)", "E[best]")
	type point struct {
		label string
		cost  float64
		secs  float64
	}
	var points []point
	for _, s := range all {
		sorted := append([]float64(nil), s.cuts...)
		sortFloats(sorted)
		for _, k := range []int{1, 4, 16} {
			e := expectedBestOfK(sorted, k)
			budget := float64(k) * s.meanSecs
			points = append(points, point{fmt.Sprintf("%s x%d", s.name, k), e, budget})
			fmt.Printf("%-10s %8d %12.4f %12.1f\n", s.name, k, budget, e)
		}
	}
	fmt.Println("\nNon-dominated frontier (lower cost AND lower runtime than no other point):")
	for _, p := range points {
		dominated := false
		for _, q := range points {
			if q.cost < p.cost && q.secs < p.secs {
				dominated = true
				break
			}
		}
		if !dominated {
			fmt.Printf("  * %-14s E[best]=%.1f at %.4fs\n", p.label, p.cost, p.secs)
		}
	}
	fmt.Println("\nThe frontier is how the paper says heuristics should be compared:")
	fmt.Println("it shows which heuristic to prefer at each runtime regime.")
}

func minAvg(xs []float64) (float64, float64) {
	mn, sum := xs[0], 0.0
	for _, x := range xs {
		if x < mn {
			mn = x
		}
		sum += x
	}
	return mn, sum / float64(len(xs))
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// expectedBestOfK is E[min of k draws] from the empirical distribution.
func expectedBestOfK(sorted []float64, k int) float64 {
	n := float64(len(sorted))
	var e float64
	for i, c := range sorted {
		hi := pow((n-float64(i))/n, k)
		lo := pow((n-float64(i)-1)/n, k)
		e += c * (hi - lo)
	}
	return e
}

func pow(x float64, k int) float64 {
	p := 1.0
	for i := 0; i < k; i++ {
		p *= x
	}
	return p
}
