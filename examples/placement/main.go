// Placement: the paper's driving application. Runs top-down recursive
// min-cut bisection placement with terminal propagation on a synthetic
// netlist and reports half-perimeter wirelength, then shows why fixed
// terminals matter by comparing cut quality with and without them.
package main

import (
	"fmt"
	"log"

	"hgpart"
)

func main() {
	spec := hgpart.Scaled(hgpart.MustIBMProfile(2), 0.10)
	h := hgpart.MustGenerate(spec)
	fmt.Print(hgpart.ComputeStats(h))

	pl, err := hgpart.Place(h, hgpart.PlacerConfig{
		MaxCellsPerRegion: 12,
		Tolerance:         0.10,
		Seed:              11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-down placement: %d bisections, %d with propagated terminals (%.0f%%)\n",
		pl.Bisections, pl.FixedTerminalInstances,
		100*float64(pl.FixedTerminalInstances)/float64(max(1, pl.Bisections)))
	fmt.Printf("total HPWL = %.2f (unit square)\n", pl.HPWL(h))

	// The paper observes that in top-down placement almost every
	// partitioning instance has fixed vertices, which changes the problem.
	// Demonstrate on the top-level bisection: fix a block of "pad" cells to
	// each side and compare the reachable cut against the unfixed instance.
	bal := hgpart.NewBalance(h.TotalVertexWeight(), 0.10)
	r := hgpart.NewRNG(3)

	free := hgpart.NewPartition(h)
	free.RandomBalanced(r.Split(), bal)
	eng := hgpart.NewFMEngine(h, hgpart.StrongFMConfig(false), bal, r.Split())
	resFree := eng.Run(free)

	fixed := hgpart.NewPartition(h)
	n := int32(h.NumVertices())
	for i := int32(0); i < n/50; i++ { // 2% of cells play pads, alternating sides
		fixed.Fix(i, int8(i%2))
	}
	fixed.RandomBalanced(r.Split(), bal)
	resFixed := eng.Run(fixed)

	fmt.Printf("\nunfixed top-level bisection cut:          %d\n", resFree.Cut)
	fmt.Printf("with 2%% of cells fixed (pads/terminals): %d\n", resFixed.Cut)
	fmt.Println("fixed terminals anchor the solution and change the problem's nature,")
	fmt.Println("which is why the paper argues unfixed benchmarks mis-measure placement use.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
